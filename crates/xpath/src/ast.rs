//! The XPE abstract syntax: location steps over the `/`, `//`, `*`
//! fragment.

use std::fmt;

/// The axis connecting a location step to the previous one.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Axis {
    /// Parent-child operator `/`: the step matches a direct child.
    Child,
    /// Ancestor-descendant operator `//`: the step matches any
    /// descendant (one or more levels below).
    Descendant,
}

/// The node test of a location step.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum NodeTest {
    /// Matches only the named element.
    Name(String),
    /// The wildcard `*`, matching any element.
    Wildcard,
}

impl NodeTest {
    /// True if this test accepts `element`.
    pub fn accepts(&self, element: &str) -> bool {
        match self {
            NodeTest::Name(n) => n == element,
            NodeTest::Wildcard => true,
        }
    }

    /// True if this test is the wildcard.
    pub fn is_wildcard(&self) -> bool {
        matches!(self, NodeTest::Wildcard)
    }

    /// The element name, if this is a name test.
    pub fn name(&self) -> Option<&str> {
        match self {
            NodeTest::Name(n) => Some(n),
            NodeTest::Wildcard => None,
        }
    }

    /// True if `self` accepts every element that `other` accepts —
    /// the single-position covering rule of §4.2.
    pub fn covers(&self, other: &NodeTest) -> bool {
        match (self, other) {
            (NodeTest::Wildcard, _) => true,
            (NodeTest::Name(a), NodeTest::Name(b)) => a == b,
            (NodeTest::Name(_), NodeTest::Wildcard) => false,
        }
    }

    /// True if some element is accepted by both tests — the
    /// adv–sub overlap rule of Figure 2(b).
    pub fn overlaps(&self, other: &NodeTest) -> bool {
        match (self, other) {
            (NodeTest::Name(a), NodeTest::Name(b)) => a == b,
            _ => true,
        }
    }
}

impl fmt::Display for NodeTest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NodeTest::Name(n) => f.write_str(n),
            NodeTest::Wildcard => f.write_str("*"),
        }
    }
}

impl From<&str> for NodeTest {
    fn from(s: &str) -> Self {
        if s == "*" {
            NodeTest::Wildcard
        } else {
            NodeTest::Name(s.to_owned())
        }
    }
}

/// An attribute predicate on a location step — the extension the paper
/// defers to its matching companion \[16\]: `[@name]` requires the
/// attribute to be present, `[@name='value']` requires an exact value.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Predicate {
    /// `[@name]` — the element carries the attribute.
    HasAttr(String),
    /// `[@name='value']` — the attribute equals the value.
    AttrEq(String, String),
}

impl Predicate {
    /// Evaluates the predicate against an element's attributes.
    pub fn eval(&self, attrs: &[(String, String)]) -> bool {
        match self {
            Predicate::HasAttr(n) => attrs.iter().any(|(k, _)| k == n),
            Predicate::AttrEq(n, v) => attrs.iter().any(|(k, w)| k == n && w == v),
        }
    }

    /// True if `self` is implied by `other` (everything satisfying
    /// `other` satisfies `self`): used by covering.
    pub fn implied_by(&self, other: &Predicate) -> bool {
        match (self, other) {
            (Predicate::HasAttr(a), Predicate::HasAttr(b)) => a == b,
            (Predicate::HasAttr(a), Predicate::AttrEq(b, _)) => a == b,
            (Predicate::AttrEq(a, v), Predicate::AttrEq(b, w)) => a == b && v == w,
            (Predicate::AttrEq(_, _), Predicate::HasAttr(_)) => false,
        }
    }
}

impl fmt::Display for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Predicate::HasAttr(n) => write!(f, "[@{n}]"),
            Predicate::AttrEq(n, v) => write!(f, "[@{n}='{v}']"),
        }
    }
}

/// One location step: an axis, a node test, and optional attribute
/// predicates.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Step {
    /// How the step connects to the previous one.
    pub axis: Axis,
    /// Which elements the step accepts.
    pub test: NodeTest,
    /// Attribute predicates, all of which must hold.
    pub predicates: Vec<Predicate>,
}

impl Step {
    /// A child-axis step.
    pub fn child(test: impl Into<NodeTest>) -> Self {
        Step {
            axis: Axis::Child,
            test: test.into(),
            predicates: Vec::new(),
        }
    }

    /// A descendant-axis step.
    pub fn descendant(test: impl Into<NodeTest>) -> Self {
        Step {
            axis: Axis::Descendant,
            test: test.into(),
            predicates: Vec::new(),
        }
    }

    /// Adds a predicate (builder style).
    pub fn with_predicate(mut self, p: Predicate) -> Self {
        self.predicates.push(p);
        self
    }

    /// True if this step accepts `element` with `attrs`.
    pub fn accepts(&self, element: &str, attrs: &[(String, String)]) -> bool {
        self.test.accepts(element) && self.predicates.iter().all(|p| p.eval(attrs))
    }

    /// Step-level covering: `self` accepts every (element, attrs) that
    /// `other` accepts — the test must cover and every predicate of
    /// `self` must be implied by one of `other`'s.
    pub fn covers(&self, other: &Step) -> bool {
        self.test.covers(&other.test)
            && self
                .predicates
                .iter()
                .all(|p| other.predicates.iter().any(|q| p.implied_by(q)))
    }
}

/// An XPath expression over the routed fragment.
///
/// An XPE is *absolute* when it is anchored at the document root
/// (written with a leading `/` or `//`) and *relative* otherwise. The
/// axis of the first step is meaningful for absolute XPEs (leading `/`
/// vs `//`); for relative XPEs the first step may match at any depth.
///
/// `Xpe` implements [`std::str::FromStr`], so `"/a/*//b".parse()` works.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Xpe {
    absolute: bool,
    steps: Vec<Step>,
}

impl Xpe {
    /// Creates an XPE from parts.
    ///
    /// # Panics
    ///
    /// Panics if `steps` is empty; the parser never produces an empty
    /// expression, so this indicates a logic error in the caller.
    pub fn new(absolute: bool, steps: Vec<Step>) -> Self {
        assert!(!steps.is_empty(), "an XPE has at least one location step");
        Xpe { absolute, steps }
    }

    /// Convenience constructor for an absolute XPE.
    pub fn absolute(steps: Vec<Step>) -> Self {
        Xpe::new(true, steps)
    }

    /// Convenience constructor for a relative XPE.
    pub fn relative(steps: Vec<Step>) -> Self {
        Xpe::new(false, steps)
    }

    /// True if the expression is anchored at the document root.
    pub fn is_absolute(&self) -> bool {
        self.absolute
    }

    /// The location steps.
    pub fn steps(&self) -> &[Step] {
        &self.steps
    }

    /// Number of location steps (the paper's XPE "length").
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Always false; expressions contain at least one step.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// True if the expression contains no descendant (`//`) operator.
    /// Simple XPEs admit the positional matching and covering
    /// algorithms of §3.2/§4.2.
    pub fn is_simple(&self) -> bool {
        // Relative XPEs carry `Child` on their (unanchored) first step,
        // so this uniformly means "no `//` operator anywhere".
        self.steps.iter().all(|s| s.axis == Axis::Child)
    }

    /// True if any step (respecting anchoring) uses the descendant axis.
    pub fn has_descendant(&self) -> bool {
        !self.is_simple()
    }

    /// True if any step is a wildcard.
    pub fn has_wildcard(&self) -> bool {
        self.steps.iter().any(|s| s.test.is_wildcard())
    }

    /// Splits the expression at descendant operators into maximal runs
    /// of child-connected steps (the "sub-XPEs" of §3.2/§4.2). The
    /// first fragment is anchored at the root only when the XPE is
    /// absolute and starts with `/`.
    pub fn fragments(&self) -> Vec<&[Step]> {
        let mut out = Vec::new();
        let mut start = 0;
        for (i, step) in self.steps.iter().enumerate() {
            let splits = step.axis == Axis::Descendant && i > 0;
            if splits {
                out.push(&self.steps[start..i]);
                start = i;
            }
        }
        out.push(&self.steps[start..]);
        out
    }

    /// Publication matching: true if the root-to-leaf `path` satisfies
    /// this expression (the selected node may be interior; the path may
    /// continue below it).
    ///
    /// ```
    /// use xdn_xpath::Xpe;
    /// let s: Xpe = "a//c".parse().unwrap();
    /// assert!(s.matches_path(&["r", "a", "b", "c", "d"]));
    /// ```
    pub fn matches_path<S: AsRef<str>>(&self, path: &[S]) -> bool {
        crate::matching::matches_path(self, path)
    }
}

impl fmt::Display for Xpe {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, step) in self.steps.iter().enumerate() {
            if i == 0 && !self.absolute {
                // Relative expressions print their first step bare;
                // `d/a` in the paper's Figure 4.
                if step.axis == Axis::Descendant {
                    // A leading descendant in relative form is written
                    // explicitly to round-trip.
                    f.write_str(".//")?;
                }
            } else {
                f.write_str(match step.axis {
                    Axis::Child => "/",
                    Axis::Descendant => "//",
                })?;
            }
            write!(f, "{}", step.test)?;
            for p in &step.predicates {
                write!(f, "{p}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xpe(s: &str) -> Xpe {
        s.parse().unwrap()
    }

    #[test]
    fn node_test_accepts() {
        assert!(NodeTest::Wildcard.accepts("anything"));
        assert!(NodeTest::Name("a".into()).accepts("a"));
        assert!(!NodeTest::Name("a".into()).accepts("b"));
    }

    #[test]
    fn node_test_covers() {
        let a = NodeTest::Name("a".into());
        let b = NodeTest::Name("b".into());
        let w = NodeTest::Wildcard;
        assert!(w.covers(&a) && w.covers(&w));
        assert!(a.covers(&a));
        assert!(!a.covers(&b) && !a.covers(&w));
    }

    #[test]
    fn node_test_overlaps_figure_2b() {
        // The five rows of Figure 2(b).
        let t = NodeTest::Name("t".into());
        let t1 = NodeTest::Name("t1".into());
        let t2 = NodeTest::Name("t2".into());
        let w = NodeTest::Wildcard;
        assert!(w.overlaps(&w));
        assert!(w.overlaps(&t));
        assert!(t.overlaps(&w));
        assert!(t.overlaps(&t));
        assert!(!t1.overlaps(&t2));
    }

    #[test]
    fn from_str_wildcard() {
        assert_eq!(NodeTest::from("*"), NodeTest::Wildcard);
        assert_eq!(NodeTest::from("x"), NodeTest::Name("x".into()));
    }

    #[test]
    fn is_simple() {
        assert!(xpe("/a/*/b").is_simple());
        assert!(xpe("a/b").is_simple());
        assert!(!xpe("/a//b").is_simple());
        assert!(!xpe("//a").is_simple());
        assert!(!xpe("a//b").is_simple());
    }

    #[test]
    fn fragments_split_on_descendant() {
        let s = xpe("*/a//d/*/c//b");
        let frags = s.fragments();
        assert_eq!(frags.len(), 3);
        assert_eq!(frags[0].len(), 2); // */a
        assert_eq!(frags[1].len(), 3); // d/*/c
        assert_eq!(frags[2].len(), 1); // b
    }

    #[test]
    fn fragments_of_simple_is_whole() {
        let s = xpe("/a/b/c");
        assert_eq!(s.fragments().len(), 1);
        assert_eq!(s.fragments()[0].len(), 3);
    }

    #[test]
    fn display_roundtrip() {
        for src in ["/a/*/b", "/a//b/c", "//a/b", "a/b", "*/c//d", "d/a"] {
            let parsed = xpe(src);
            let printed = parsed.to_string();
            let reparsed: Xpe = printed.parse().unwrap();
            assert_eq!(parsed, reparsed, "roundtrip failed for {src} -> {printed}");
        }
    }

    #[test]
    fn display_absolute() {
        assert_eq!(xpe("/a/*//b").to_string(), "/a/*//b");
        assert_eq!(xpe("//a").to_string(), "//a");
        assert_eq!(xpe("a/b").to_string(), "a/b");
    }

    #[test]
    #[should_panic(expected = "at least one location step")]
    fn empty_steps_panic() {
        let _ = Xpe::new(true, vec![]);
    }

    #[test]
    fn step_constructors() {
        let s = Step::child("a");
        assert_eq!(s.axis, Axis::Child);
        let d = Step::descendant("*");
        assert_eq!(d.axis, Axis::Descendant);
        assert!(d.test.is_wildcard());
    }

    #[test]
    fn ordering_is_total() {
        let mut v = [xpe("/b"), xpe("/a"), xpe("a")];
        v.sort();
        assert_eq!(v.len(), 3);
    }
}
