//! DTD-guided random XPE generation.
//!
//! The paper's evaluation (§5) generates query workloads with the XPath
//! generator released by Diao et al., varying
//!
//! * `W` — the probability of a `*` wildcard at a location step,
//! * `DO` — the probability of a `//` descendant operator at a step,
//! * the maximum XPE length (10),
//!
//! and requiring queries to be distinct. That tool is not available;
//! this module is the documented substitute: a seeded random walk over
//! the DTD's element graph so every generated expression is satisfiable
//! by some conforming document.

use crate::ast::{Axis, NodeTest, Step, Xpe};
use rand::Rng;
use std::collections::HashSet;
use xdn_xml::dtd::Dtd;

/// Parameters of the XPE generator, mirroring the knobs the paper
/// reports tuning.
#[derive(Debug, Clone, PartialEq)]
pub struct XpeGeneratorConfig {
    /// Maximum number of location steps (paper: 10).
    pub max_length: usize,
    /// Minimum number of walked levels before the walk may stop early.
    pub min_length: usize,
    /// Probability of stopping the walk after each step beyond
    /// `min_length` (controls query-length distribution, and thereby
    /// how often one query is a prefix of — and covers — another).
    pub stop_p: f64,
    /// Probability `W` that a step's node test is `*`.
    pub wildcard_p: f64,
    /// Probability `DO` that a step is connected with `//`.
    pub descendant_p: f64,
    /// Probability that a generated XPE is relative rather than
    /// absolute (relative expressions drop a random prefix of the
    /// walk).
    pub relative_p: f64,
    /// Maximum number of walk levels a `//` operator may swallow.
    pub descendant_skip_max: usize,
    /// Bound on element repetition during the walk for recursive DTDs.
    pub cycle_unroll: usize,
    /// Keep the first location step concrete (subscribers typically
    /// know the document root); prevents degenerate universal queries
    /// like `/*//*`.
    pub first_concrete: bool,
    /// Cap on wildcard steps per query.
    pub max_wildcards: usize,
    /// Cap on descendant operators per query.
    pub max_descendants: usize,
    /// Walks shorter than this stay fully concrete (no `*`, no `//`):
    /// short generalized queries such as `/nitf//*` cover entire
    /// subtrees and would collapse any covering-rate target.
    pub generalize_min_walk: usize,
}

impl Default for XpeGeneratorConfig {
    fn default() -> Self {
        XpeGeneratorConfig {
            max_length: 10,
            min_length: 1,
            stop_p: 0.25,
            wildcard_p: 0.2,
            descendant_p: 0.2,
            relative_p: 0.1,
            descendant_skip_max: 2,
            cycle_unroll: 2,
            first_concrete: false,
            max_wildcards: usize::MAX,
            max_descendants: usize::MAX,
            generalize_min_walk: 0,
        }
    }
}

/// Generates one random XPE satisfiable under `dtd`.
///
/// The walk starts at the DTD root and descends through randomly chosen
/// children; each emitted step is independently widened to `*` with
/// probability `W`, and connected with `//` (skipping up to
/// `descendant_skip_max` walked levels) with probability `DO`.
pub fn generate_xpe<R: Rng + ?Sized>(dtd: &Dtd, config: &XpeGeneratorConfig, rng: &mut R) -> Xpe {
    // Phase 1: random root-to-somewhere walk through the element graph.
    let walk = random_walk(dtd, config, rng);
    // Phase 2: turn the walk into an expression.
    walk_to_xpe(&walk, config, rng)
}

fn random_walk<R: Rng + ?Sized>(
    dtd: &Dtd,
    config: &XpeGeneratorConfig,
    rng: &mut R,
) -> Vec<String> {
    let mut walk = vec![dtd.root().to_owned()];
    // Walk deeper than max_length so `//` has levels to skip.
    let budget = config.max_length + config.descendant_skip_max * 2;
    while walk.len() < budget {
        let here = walk.last().expect("walk starts non-empty");
        let children: Vec<&str> = dtd
            .children_of(here)
            .into_iter()
            .filter(|c| walk.iter().filter(|w| w == c).count() <= config.cycle_unroll)
            .collect();
        if children.is_empty() {
            break;
        }
        let next = children[rng.gen_range(0..children.len())].to_owned();
        walk.push(next);
        // Randomly stop early so lengths are diverse.
        if walk.len() >= config.min_length && rng.gen_bool(config.stop_p) {
            break;
        }
    }
    walk
}

fn walk_to_xpe<R: Rng + ?Sized>(walk: &[String], config: &XpeGeneratorConfig, rng: &mut R) -> Xpe {
    let relative = walk.len() > 1 && rng.gen_bool(config.relative_p);
    let start = if relative {
        rng.gen_range(1..walk.len())
    } else {
        0
    };
    let generalize = walk.len() - start >= config.generalize_min_walk;

    let mut steps = Vec::new();
    let mut i = start;
    let mut wildcards = 0usize;
    let mut descendants = 0usize;
    while i < walk.len() && steps.len() < config.max_length {
        let may_descend = generalize && descendants < config.max_descendants;
        let axis = if steps.is_empty() {
            // The anchoring of the first step: absolute expressions may
            // begin with `//`, mirroring Diao's generator.
            if !relative && may_descend && rng.gen_bool(config.descendant_p) {
                Axis::Descendant
            } else {
                Axis::Child
            }
        } else if may_descend && rng.gen_bool(config.descendant_p) {
            Axis::Descendant
        } else {
            Axis::Child
        };
        if axis == Axis::Descendant {
            descendants += 1;
        }
        if axis == Axis::Descendant && config.descendant_skip_max > 0 && !steps.is_empty() {
            // `//` swallows some walked levels so the operator is not
            // vacuous (it still matches the skipped levels).
            let max_skip = config
                .descendant_skip_max
                .min(walk.len().saturating_sub(i + 1));
            if max_skip > 0 {
                i += rng.gen_range(0..=max_skip);
            }
        }
        let first_must_be_concrete = steps.is_empty() && config.first_concrete;
        let test = if generalize
            && !first_must_be_concrete
            && wildcards < config.max_wildcards
            && rng.gen_bool(config.wildcard_p)
        {
            wildcards += 1;
            NodeTest::Wildcard
        } else {
            NodeTest::Name(walk[i].clone())
        };
        steps.push(Step {
            axis,
            test,
            predicates: Vec::new(),
        });
        i += 1;
    }
    debug_assert!(!steps.is_empty());
    Xpe::new(!relative, steps)
}

/// Generates `count` *distinct* XPEs (textual distinctness, matching
/// the paper's "queries are distinct").
///
/// Gives up after `count * 200` attempts if the DTD cannot support the
/// requested diversity and returns however many were found; callers
/// should check `len()` when using tiny DTDs.
pub fn generate_distinct_xpes<R: Rng + ?Sized>(
    dtd: &Dtd,
    count: usize,
    config: &XpeGeneratorConfig,
    rng: &mut R,
) -> Vec<Xpe> {
    let mut seen = HashSet::with_capacity(count);
    let mut out = Vec::with_capacity(count);
    let mut attempts = 0usize;
    let max_attempts = count.saturating_mul(200).max(1000);
    while out.len() < count && attempts < max_attempts {
        attempts += 1;
        let x = generate_xpe(dtd, config, rng);
        if seen.insert(x.to_string()) {
            out.push(x);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(seed)
    }

    fn dtd() -> Dtd {
        Dtd::parse(
            "<!ELEMENT cat (sub1, sub2)>\n\
             <!ELEMENT sub1 (leaf1, leaf2, mid*)>\n\
             <!ELEMENT sub2 (mid+, leaf3?)>\n\
             <!ELEMENT mid (leaf1 | leaf2 | mid)*>\n\
             <!ELEMENT leaf1 EMPTY>\n\
             <!ELEMENT leaf2 (#PCDATA)>\n\
             <!ELEMENT leaf3 EMPTY>",
        )
        .unwrap()
    }

    #[test]
    fn generated_xpes_are_satisfiable() {
        // Every generated expression must match the walked path it came
        // from; verify against documents via brute-force path check: a
        // generated absolute XPE must match at least one DTD path.
        let dtd = dtd();
        let cfg = XpeGeneratorConfig::default();
        let universe = dtd.enumerate_paths(12, 2, 100_000);
        let mut r = rng(1);
        for _ in 0..200 {
            let x = generate_xpe(&dtd, &cfg, &mut r);
            let matched = universe.iter().any(|p| {
                // XPE may select an interior node; extend check over
                // prefixes handled by matches_path already.
                x.matches_path(p)
            });
            assert!(matched, "unsatisfiable XPE generated: {x}");
        }
    }

    #[test]
    fn respects_max_length() {
        let dtd = dtd();
        let cfg = XpeGeneratorConfig {
            max_length: 3,
            ..Default::default()
        };
        let mut r = rng(2);
        for _ in 0..100 {
            assert!(generate_xpe(&dtd, &cfg, &mut r).len() <= 3);
        }
    }

    #[test]
    fn zero_probabilities_give_plain_absolute() {
        let dtd = dtd();
        let cfg = XpeGeneratorConfig {
            wildcard_p: 0.0,
            descendant_p: 0.0,
            relative_p: 0.0,
            ..Default::default()
        };
        let mut r = rng(3);
        for _ in 0..50 {
            let x = generate_xpe(&dtd, &cfg, &mut r);
            assert!(x.is_absolute());
            assert!(x.is_simple());
            assert!(!x.has_wildcard());
        }
    }

    #[test]
    fn high_wildcard_probability_produces_wildcards() {
        let dtd = dtd();
        let cfg = XpeGeneratorConfig {
            wildcard_p: 1.0,
            ..Default::default()
        };
        let mut r = rng(4);
        let x = generate_xpe(&dtd, &cfg, &mut r);
        assert!(x.steps().iter().all(|s| s.test.is_wildcard()));
    }

    #[test]
    fn distinct_generation() {
        let dtd = dtd();
        let cfg = XpeGeneratorConfig::default();
        let xpes = generate_distinct_xpes(&dtd, 300, &cfg, &mut rng(5));
        let unique: HashSet<String> = xpes.iter().map(std::string::ToString::to_string).collect();
        assert_eq!(unique.len(), xpes.len());
        assert!(
            xpes.len() >= 250,
            "DTD should support >=250 distinct XPEs, got {}",
            xpes.len()
        );
    }

    #[test]
    fn deterministic_with_seed() {
        let dtd = dtd();
        let cfg = XpeGeneratorConfig::default();
        let a = generate_distinct_xpes(&dtd, 50, &cfg, &mut rng(9));
        let b = generate_distinct_xpes(&dtd, 50, &cfg, &mut rng(9));
        assert_eq!(a, b);
    }

    #[test]
    fn tiny_dtd_gives_up_gracefully() {
        let dtd = Dtd::parse("<!ELEMENT a EMPTY>").unwrap();
        let cfg = XpeGeneratorConfig {
            wildcard_p: 0.0,
            descendant_p: 0.0,
            relative_p: 0.0,
            ..Default::default()
        };
        let xpes = generate_distinct_xpes(&dtd, 10, &cfg, &mut rng(6));
        assert_eq!(xpes.len(), 1, "only /a exists");
    }

    #[test]
    fn relative_expressions_generated() {
        let dtd = dtd();
        let cfg = XpeGeneratorConfig {
            relative_p: 1.0,
            ..Default::default()
        };
        let mut r = rng(7);
        let any_relative = (0..50).any(|_| !generate_xpe(&dtd, &cfg, &mut r).is_absolute());
        assert!(any_relative);
    }
}
