//! The shared path-matching automaton: every registered XPE compiled
//! into one NFA over location steps, so a publication path is matched
//! against the *whole* subscription set in a single traversal instead
//! of one evaluation per candidate expression (the YFilter idea).
//!
//! # Construction
//!
//! States form a trie over location steps, shared between expressions
//! with a common prefix:
//!
//! * a **child step** (`/x`) is an outgoing edge labelled with the
//!   interned element name (or a wildcard edge for `*`) consuming one
//!   path element;
//! * a **descendant step** (`//x`) interposes a *slash state* — a
//!   self-looping state reached by an ε-edge from its owner — before
//!   the step's edge, so the edge may fire at any later depth. The
//!   root's slash state doubles as the floating start for relative and
//!   leading-`//` expressions (both place their first fragment at any
//!   depth, so they share it);
//! * a step with **attribute predicates** gets its own edge whose label
//!   is the (node test, predicate list) pair; predicates are checked
//!   against the consumed element's attributes when the edge fires,
//!   which keeps interior predicates exact while unpredicated
//!   expressions still share the plain name/wildcard edges.
//!
//! Each expression ends at exactly one *accepting* state carrying its
//! caller-chosen `u64` token, so a traversal reports every token at
//! most once.
//!
//! # Encoding and traversal
//!
//! States are `u32` ids into one dense `Vec`; per-state name edges are
//! a sorted vec probed by binary search, promoted to a `HashMap` above
//! a fan-out threshold. The traversal keeps an active-state set per
//! path position, deduplicated with generation-stamped marks held in
//! thread-local scratch (the automaton itself stays `Sync`, so sharded
//! routers can match the same instance from several pool workers).
//!
//! # Churn
//!
//! `insert` threads new steps through the existing trie — no rebuild.
//! `remove` detaches the token from its accepting state and *leaves the
//! structure in place* (a tombstone), charging the expression's step
//! count to a debt counter. When the debt exceeds the live step count
//! (see [`PathAutomaton::needs_compaction`]) the caller runs
//! [`PathAutomaton::compact`], which rebuilds the trie from the live
//! entries and resets the debt — amortized O(1) structural work per
//! removal, with the rebuild visible in [`NfaStats`].

use crate::ast::{Axis, NodeTest, Predicate, Xpe};
use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// Name-edge fan-out at which a state's sorted edge vec is promoted to
/// a hash map (binary search loses to hashing around this size, and
/// high-fan-out states sit on every traversal's hot path).
const HASH_FANOUT: usize = 16;

/// Scratch sets retained per thread before the pool is cleared
/// (bounds memory when many short-lived automatons share a thread).
const SCRATCH_POOL_CAP: usize = 8;

/// Interned element name.
type NameId = u32;

/// Dense state id.
type StateId = u32;

/// The root state: anchored expressions start here.
const ROOT: StateId = 0;

/// Outgoing name edges of one state.
#[derive(Debug, Clone)]
enum NameEdges {
    /// Sorted by name id; probed by binary search.
    Sorted(Vec<(NameId, StateId)>),
    /// Promoted above [`HASH_FANOUT`] distinct names.
    Hashed(HashMap<NameId, StateId>),
}

impl NameEdges {
    fn lookup(&self, name: NameId) -> Option<StateId> {
        match self {
            NameEdges::Sorted(v) => v
                .binary_search_by_key(&name, |&(n, _)| n)
                .ok()
                .and_then(|i| v.get(i))
                .map(|&(_, t)| t),
            NameEdges::Hashed(m) => m.get(&name).copied(),
        }
    }

    /// Inserts the edge `name -> target` (the name must not be present)
    /// and promotes the representation past the fan-out threshold.
    fn insert(&mut self, name: NameId, target: StateId) {
        match self {
            NameEdges::Sorted(v) => {
                if let Err(i) = v.binary_search_by_key(&name, |&(n, _)| n) {
                    v.insert(i, (name, target));
                }
                if v.len() > HASH_FANOUT {
                    *self = NameEdges::Hashed(v.iter().copied().collect());
                }
            }
            NameEdges::Hashed(m) => {
                m.entry(name).or_insert(target);
            }
        }
    }
}

/// An edge whose label carries attribute predicates (and possibly a
/// wildcard test); matched by full label equality on insert so equal
/// predicated steps share structure.
#[derive(Debug, Clone)]
struct PredEdge {
    test: NodeTest,
    predicates: Vec<Predicate>,
    target: StateId,
}

/// One NFA state.
#[derive(Debug, Clone)]
struct State {
    /// Plain name-test edges (no predicates).
    names: NameEdges,
    /// Plain wildcard edge (no predicates).
    wildcard: Option<StateId>,
    /// Predicated edges, scanned linearly (rare).
    preds: Vec<PredEdge>,
    /// The slash state hanging off this one (descendant closure);
    /// activated whenever this state is.
    eps_slash: Option<StateId>,
    /// Slash states stay active once reached ("any later depth").
    self_loop: bool,
    /// Tokens of expressions ending here.
    accepts: Vec<u64>,
}

impl State {
    fn new(self_loop: bool) -> Self {
        State {
            names: NameEdges::Sorted(Vec::new()),
            wildcard: None,
            preds: Vec::new(),
            eps_slash: None,
            self_loop,
            accepts: Vec::new(),
        }
    }
}

/// One registered expression: kept verbatim so compaction can rebuild
/// the trie and so callers can look tokens back up.
#[derive(Debug, Clone)]
struct Entry {
    xpe: Xpe,
    /// The accepting state currently holding the token.
    state: StateId,
}

/// Counters and gauges describing one automaton, for the observability
/// scrape (the `xdn_automaton_*` families).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NfaStats {
    /// States currently allocated (including tombstoned structure
    /// awaiting compaction).
    pub states: usize,
    /// Live registered expressions.
    pub live_subs: usize,
    /// Edges traversed by all matches since creation.
    pub transitions_total: u64,
    /// Largest active-state set any single traversal reached.
    pub peak_active_states: u64,
    /// Compaction rebuilds performed.
    pub compactions_total: u64,
    /// Step debt left behind by removals since the last compaction.
    pub tombstone_steps: usize,
}

/// The shared subscription automaton. See the module docs.
///
/// ```
/// use xdn_xpath::automaton::PathAutomaton;
///
/// let mut nfa = PathAutomaton::new();
/// nfa.insert(1, "/a/b".parse()?);
/// nfa.insert(2, "//b".parse()?);
/// let mut hits = Vec::new();
/// nfa.for_each_match(&["a", "b"], &[], &mut |t| hits.push(t));
/// hits.sort_unstable();
/// assert_eq!(hits, [1, 2]);
/// # Ok::<(), xdn_xpath::XpeParseError>(())
/// ```
#[derive(Debug)]
pub struct PathAutomaton {
    /// Element-name intern table; unknown path elements can only take
    /// wildcard or predicated edges.
    names: HashMap<String, NameId>,
    states: Vec<State>,
    entries: HashMap<u64, Entry>,
    /// Steps of live entries (denominator of the compaction trigger).
    live_steps: usize,
    /// Steps stranded by removals (numerator of the trigger).
    tombstone_steps: usize,
    compactions: u64,
    /// Bumped on every mutation; stale thread-local marks from an
    /// earlier shape of this automaton are discarded on mismatch.
    version: u64,
    /// Process-unique instance id keying the thread-local scratch.
    instance: u64,
    transitions: AtomicU64,
    peak_active: AtomicU64,
}

impl Default for PathAutomaton {
    fn default() -> Self {
        Self::new()
    }
}

impl Clone for PathAutomaton {
    fn clone(&self) -> Self {
        PathAutomaton {
            names: self.names.clone(),
            states: self.states.clone(),
            entries: self.entries.clone(),
            live_steps: self.live_steps,
            tombstone_steps: self.tombstone_steps,
            compactions: self.compactions,
            version: self.version,
            // A clone is a distinct instance: it must not share scratch
            // marks with its source.
            instance: next_instance(),
            transitions: AtomicU64::new(self.transitions.load(Ordering::Relaxed)),
            peak_active: AtomicU64::new(self.peak_active.load(Ordering::Relaxed)),
        }
    }
}

/// Allocates a process-unique automaton instance id.
fn next_instance() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    NEXT.fetch_add(1, Ordering::Relaxed)
}

impl PathAutomaton {
    /// Creates an empty automaton (just the root state).
    pub fn new() -> Self {
        PathAutomaton {
            names: HashMap::new(),
            states: vec![State::new(false)],
            entries: HashMap::new(),
            live_steps: 0,
            tombstone_steps: 0,
            compactions: 0,
            version: 0,
            instance: next_instance(),
            transitions: AtomicU64::new(0),
            peak_active: AtomicU64::new(0),
        }
    }

    /// Number of registered expressions.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if no expressions are registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The expression registered under `token`, if present.
    pub fn xpe(&self, token: u64) -> Option<&Xpe> {
        self.entries.get(&token).map(|e| &e.xpe)
    }

    /// Registered `(token, expression)` pairs, in arbitrary order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &Xpe)> {
        self.entries.iter().map(|(&t, e)| (t, &e.xpe))
    }

    /// A stats snapshot for metrics export.
    pub fn stats(&self) -> NfaStats {
        NfaStats {
            states: self.states.len(),
            live_subs: self.entries.len(),
            transitions_total: self.transitions.load(Ordering::Relaxed),
            peak_active_states: self.peak_active.load(Ordering::Relaxed),
            compactions_total: self.compactions,
            tombstone_steps: self.tombstone_steps,
        }
    }

    /// Registers `xpe` under `token`, threading its steps through the
    /// shared trie (no rebuild). Re-registering a token replaces its
    /// expression.
    pub fn insert(&mut self, token: u64, xpe: Xpe) {
        if self.entries.contains_key(&token) {
            self.remove(token);
        }
        self.version = self.version.wrapping_add(1);
        let state = self.thread_steps(&xpe);
        if let Some(st) = self.states.get_mut(state as usize) {
            st.accepts.push(token);
        }
        self.live_steps += xpe.len();
        self.entries.insert(token, Entry { xpe, state });
    }

    /// Removes the expression registered under `token` (tombstoning its
    /// trie structure; see the module docs). Returns false for unknown
    /// tokens. Callers decide when to [`PathAutomaton::compact`] —
    /// check [`PathAutomaton::needs_compaction`] after removals.
    pub fn remove(&mut self, token: u64) -> bool {
        let Some(entry) = self.entries.remove(&token) else {
            return false;
        };
        self.version = self.version.wrapping_add(1);
        if let Some(st) = self.states.get_mut(entry.state as usize) {
            if let Some(i) = st.accepts.iter().position(|&t| t == token) {
                st.accepts.swap_remove(i);
            }
        }
        let steps = entry.xpe.len();
        self.live_steps = self.live_steps.saturating_sub(steps);
        self.tombstone_steps += steps;
        true
    }

    /// True when removal debt warrants a compaction rebuild: the
    /// stranded step count exceeds both a floor (so small tables never
    /// rebuild) and the live step count (so the trie is at most ~2x its
    /// minimal size between rebuilds).
    pub fn needs_compaction(&self) -> bool {
        self.tombstone_steps > 64 && self.tombstone_steps > self.live_steps
    }

    /// Rebuilds the trie from the live entries, discarding tombstoned
    /// structure. Deterministic: entries are re-threaded in token
    /// order, so two automatons holding the same set compact to the
    /// same shape.
    pub fn compact(&mut self) {
        self.version = self.version.wrapping_add(1);
        self.compactions += 1;
        self.names.clear();
        self.states.clear();
        self.states.push(State::new(false));
        self.tombstone_steps = 0;
        self.live_steps = 0;
        let mut tokens: Vec<u64> = self.entries.keys().copied().collect();
        tokens.sort_unstable();
        // Re-thread in place: take each entry's expression, rebuild its
        // chain, and store the new accepting state.
        for token in tokens {
            let Some(xpe) = self.entries.get(&token).map(|e| e.xpe.clone()) else {
                continue;
            };
            let state = self.thread_steps(&xpe);
            if let Some(st) = self.states.get_mut(state as usize) {
                st.accepts.push(token);
            }
            self.live_steps += xpe.len();
            if let Some(e) = self.entries.get_mut(&token) {
                e.state = state;
            }
        }
    }

    /// Calls `f` with the token of every registered expression matching
    /// the root-to-leaf `path` (with per-element `attrs`, aligned like
    /// [`crate::matching::matches_path_with_attrs`]) — one traversal
    /// for the whole set; each token reported at most once.
    pub fn for_each_match<S: AsRef<str>>(
        &self,
        path: &[S],
        attrs: &[Vec<(String, String)>],
        f: &mut dyn FnMut(u64),
    ) {
        if path.is_empty() || self.entries.is_empty() {
            return;
        }
        let mut scratch = take_scratch(self.instance);
        scratch.ensure(self.version, self.states.len());
        self.traverse(&mut scratch, path, attrs, f);
        put_scratch(scratch);
    }

    /// The traversal proper, on checked-out scratch.
    fn traverse<S: AsRef<str>>(
        &self,
        scratch: &mut Scratch,
        path: &[S],
        attrs: &[Vec<(String, String)>],
        f: &mut dyn FnMut(u64),
    ) {
        const NO_ATTRS: &[(String, String)] = &[];
        // Generation stamps: `start + pos` dedups the active set built
        // for position `pos`; `start` itself stamps accept reporting
        // (once per token per traversal). u64 generations never wrap in
        // practice, so marks are reset only when the automaton mutates.
        let start = scratch.generation + 1;
        scratch.generation = start + path.len() as u64;
        let mut transitions = 0u64;
        let mut peak = 0u64;
        scratch.current.clear();
        activate(
            &self.states,
            ROOT,
            start,
            start,
            &mut scratch.state_mark,
            &mut scratch.accept_mark,
            &mut scratch.current,
            f,
        );
        for (pos, elem) in path.iter().enumerate() {
            let elem = elem.as_ref();
            let name_id = self.names.get(elem).copied();
            let attrs_here = attrs.get(pos).map_or(NO_ATTRS, Vec::as_slice);
            let next_stamp = start + pos as u64 + 1;
            scratch.next.clear();
            for &sid in &scratch.current {
                let Some(st) = self.states.get(sid as usize) else {
                    continue;
                };
                if st.self_loop {
                    // Stays active at the next position; its accepts
                    // (if any) were reported on first activation.
                    if let Some(m) = scratch.state_mark.get_mut(sid as usize) {
                        if *m != next_stamp {
                            *m = next_stamp;
                            scratch.next.push(sid);
                        }
                    }
                }
                if let Some(target) = name_id.and_then(|n| st.names.lookup(n)) {
                    transitions += 1;
                    activate(
                        &self.states,
                        target,
                        next_stamp,
                        start,
                        &mut scratch.state_mark,
                        &mut scratch.accept_mark,
                        &mut scratch.next,
                        f,
                    );
                }
                if let Some(target) = st.wildcard {
                    transitions += 1;
                    activate(
                        &self.states,
                        target,
                        next_stamp,
                        start,
                        &mut scratch.state_mark,
                        &mut scratch.accept_mark,
                        &mut scratch.next,
                        f,
                    );
                }
                for pe in &st.preds {
                    if pe.test.accepts(elem) && pe.predicates.iter().all(|p| p.eval(attrs_here)) {
                        transitions += 1;
                        activate(
                            &self.states,
                            pe.target,
                            next_stamp,
                            start,
                            &mut scratch.state_mark,
                            &mut scratch.accept_mark,
                            &mut scratch.next,
                            f,
                        );
                    }
                }
            }
            std::mem::swap(&mut scratch.current, &mut scratch.next);
            peak = peak.max(scratch.current.len() as u64);
            if scratch.current.is_empty() {
                break;
            }
        }
        self.transitions.fetch_add(transitions, Ordering::Relaxed);
        self.peak_active.fetch_max(peak, Ordering::Relaxed);
    }

    /// Walks (creating as needed) the chain of states for `xpe` and
    /// returns its accepting state.
    fn thread_steps(&mut self, xpe: &Xpe) -> StateId {
        let anchored =
            xpe.is_absolute() && xpe.steps().first().is_some_and(|s| s.axis == Axis::Child);
        // Relative and leading-`//` expressions both place their first
        // fragment at any depth: they start from the root's slash state.
        let mut cur = if anchored { ROOT } else { self.slash_of(ROOT) };
        for (i, step) in xpe.steps().iter().enumerate() {
            if i > 0 && step.axis == Axis::Descendant {
                cur = self.slash_of(cur);
            }
            cur = self.edge_of(cur, step);
        }
        cur
    }

    /// The slash (descendant-closure) state hanging off `state`,
    /// created on first use.
    fn slash_of(&mut self, state: StateId) -> StateId {
        if let Some(s) = self.states.get(state as usize).and_then(|s| s.eps_slash) {
            return s;
        }
        let id = self.alloc(State::new(true));
        if let Some(st) = self.states.get_mut(state as usize) {
            st.eps_slash = Some(id);
        }
        id
    }

    /// The target of `state`'s edge labelled by `step`, created on
    /// first use.
    fn edge_of(&mut self, state: StateId, step: &crate::ast::Step) -> StateId {
        if step.predicates.is_empty() {
            match &step.test {
                NodeTest::Name(n) => {
                    let name = self.intern(n);
                    if let Some(t) = self
                        .states
                        .get(state as usize)
                        .and_then(|s| s.names.lookup(name))
                    {
                        return t;
                    }
                    let t = self.alloc(State::new(false));
                    if let Some(st) = self.states.get_mut(state as usize) {
                        st.names.insert(name, t);
                    }
                    t
                }
                NodeTest::Wildcard => {
                    if let Some(t) = self.states.get(state as usize).and_then(|s| s.wildcard) {
                        return t;
                    }
                    let t = self.alloc(State::new(false));
                    if let Some(st) = self.states.get_mut(state as usize) {
                        st.wildcard = Some(t);
                    }
                    t
                }
            }
        } else {
            let existing = self.states.get(state as usize).and_then(|s| {
                s.preds
                    .iter()
                    .find(|e| e.test == step.test && e.predicates == step.predicates)
                    .map(|e| e.target)
            });
            if let Some(t) = existing {
                return t;
            }
            let t = self.alloc(State::new(false));
            if let Some(st) = self.states.get_mut(state as usize) {
                st.preds.push(PredEdge {
                    test: step.test.clone(),
                    predicates: step.predicates.clone(),
                    target: t,
                });
            }
            t
        }
    }

    fn alloc(&mut self, state: State) -> StateId {
        let id = self.states.len() as StateId;
        self.states.push(state);
        id
    }

    fn intern(&mut self, name: &str) -> NameId {
        if let Some(&id) = self.names.get(name) {
            return id;
        }
        let id = self.names.len() as NameId;
        self.names.insert(name.to_owned(), id);
        id
    }
}

/// Activates `target` into the set stamped `stamp`: dedups via the
/// state marks, reports accepting tokens once per traversal (the
/// `accept_stamp` marks), and follows the slash ε-closure.
#[allow(clippy::too_many_arguments)]
fn activate(
    states: &[State],
    target: StateId,
    stamp: u64,
    accept_stamp: u64,
    state_mark: &mut [u64],
    accept_mark: &mut [u64],
    set: &mut Vec<StateId>,
    f: &mut dyn FnMut(u64),
) {
    let mut t = target;
    loop {
        let Some(m) = state_mark.get_mut(t as usize) else {
            return;
        };
        if *m == stamp {
            return;
        }
        *m = stamp;
        set.push(t);
        let Some(st) = states.get(t as usize) else {
            return;
        };
        if !st.accepts.is_empty() {
            if let Some(am) = accept_mark.get_mut(t as usize) {
                if *am != accept_stamp {
                    *am = accept_stamp;
                    for &token in &st.accepts {
                        f(token);
                    }
                }
            }
        }
        // ε-closure: activating a state activates its slash state.
        match st.eps_slash {
            Some(next) => t = next,
            None => return,
        }
    }
}

/// Per-thread traversal scratch for one automaton instance.
#[derive(Debug, Default)]
struct Scratch {
    /// Which automaton these marks belong to.
    owner: u64,
    /// The automaton version the marks were last valid for.
    version: u64,
    generation: u64,
    state_mark: Vec<u64>,
    accept_mark: Vec<u64>,
    current: Vec<StateId>,
    next: Vec<StateId>,
}

impl Scratch {
    fn for_owner(owner: u64) -> Self {
        Scratch {
            owner,
            ..Scratch::default()
        }
    }

    /// Revalidates the marks for the automaton's current shape: on a
    /// version change or growth, stale stamps are discarded.
    fn ensure(&mut self, version: u64, states: usize) {
        if self.version != version || self.state_mark.len() < states {
            self.state_mark.clear();
            self.state_mark.resize(states, 0);
            self.accept_mark.clear();
            self.accept_mark.resize(states, 0);
            self.generation = 0;
            self.version = version;
        }
    }
}

thread_local! {
    /// Scratch checked out by owner id for the duration of a traversal
    /// (checked out, not borrowed, so a match visitor that re-enters
    /// the automaton simply gets fresh scratch instead of a borrow
    /// panic).
    static SCRATCH: RefCell<Vec<Scratch>> = const { RefCell::new(Vec::new()) };
}

fn take_scratch(owner: u64) -> Scratch {
    SCRATCH.with(|pool| {
        let mut pool = pool.borrow_mut();
        match pool.iter().position(|s| s.owner == owner) {
            Some(i) => pool.swap_remove(i),
            None => Scratch::for_owner(owner),
        }
    })
}

fn put_scratch(scratch: Scratch) {
    SCRATCH.with(|pool| {
        let mut pool = pool.borrow_mut();
        if pool.len() >= SCRATCH_POOL_CAP {
            // Many automatons on one thread: drop the retained sets
            // rather than growing without bound.
            pool.clear();
        }
        pool.push(scratch);
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matching::matches_path_with_attrs;

    fn xpe(s: &str) -> Xpe {
        s.parse().unwrap()
    }

    fn matches(nfa: &PathAutomaton, path: &[&str]) -> Vec<u64> {
        matches_with_attrs(nfa, path, &[])
    }

    fn matches_with_attrs(
        nfa: &PathAutomaton,
        path: &[&str],
        attrs: &[Vec<(String, String)>],
    ) -> Vec<u64> {
        let mut out = Vec::new();
        nfa.for_each_match(path, attrs, &mut |t| out.push(t));
        out.sort_unstable();
        out
    }

    fn single(expr: &str, path: &[&str]) -> bool {
        let mut nfa = PathAutomaton::new();
        nfa.insert(1, xpe(expr));
        matches(&nfa, path) == [1]
    }

    #[test]
    fn absolute_anchored_prefix() {
        assert!(single("/a/b", &["a", "b"]));
        assert!(single("/a/b", &["a", "b", "c"]));
        assert!(!single("/a/b", &["x", "a", "b"]));
        assert!(!single("/a/b", &["a"]));
    }

    #[test]
    fn wildcards() {
        assert!(single("/a/*/c", &["a", "b", "c"]));
        assert!(single("/*/*", &["x", "y", "z"]));
        assert!(!single("/a/*/c", &["a", "c"]));
    }

    #[test]
    fn leading_descendant() {
        assert!(single("//b", &["a", "b"]));
        assert!(single("//b", &["b"]));
        assert!(single("//b/c", &["a", "b", "c"]));
        assert!(!single("//b/c", &["a", "c", "b"]));
    }

    #[test]
    fn inner_descendant_strictly_below() {
        assert!(single("/a//b", &["a", "b"]));
        assert!(single("/a//b", &["a", "x", "y", "b"]));
        assert!(!single("/a//b", &["a"]));
        assert!(!single("/a//a", &["a"]));
        assert!(single("/a//a", &["a", "a"]));
    }

    #[test]
    fn relative_floats() {
        assert!(single("b/c", &["a", "b", "c"]));
        assert!(single("b/c", &["b", "c"]));
        assert!(!single("b/c", &["a", "c", "b"]));
        assert!(single(".//c", &["a", "b", "c"]));
        assert!(single(".//c", &["c"]));
    }

    #[test]
    fn backtracking_cases() {
        // Greedy earliest placement must not lose later placements:
        // the NFA explores all of them.
        assert!(single("/a//b/c", &["a", "b", "x", "b", "c"]));
        assert!(single(
            "*/a//d/*/c//b",
            &["r", "a", "e", "q", "d", "x", "c", "b"]
        ));
        assert!(single("/a//b//c", &["a", "x", "b", "y", "c"]));
        assert!(!single("/a//b//c", &["a", "c", "b"]));
    }

    #[test]
    fn empty_path_matches_nothing() {
        let mut nfa = PathAutomaton::new();
        nfa.insert(1, xpe("//*"));
        assert!(matches(&nfa, &[]).is_empty());
    }

    #[test]
    fn predicates_on_edges() {
        let mut nfa = PathAutomaton::new();
        nfa.insert(1, xpe("/a/b"));
        nfa.insert(2, xpe("/a/b[@k]"));
        nfa.insert(3, xpe("/a[@k='v']/b"));
        let no_attrs: Vec<Vec<(String, String)>> = vec![];
        assert_eq!(matches_with_attrs(&nfa, &["a", "b"], &no_attrs), [1]);
        let leaf_attr = vec![vec![], vec![("k".to_string(), "x".to_string())]];
        assert_eq!(matches_with_attrs(&nfa, &["a", "b"], &leaf_attr), [1, 2]);
        let root_attr = vec![vec![("k".to_string(), "v".to_string())], vec![]];
        assert_eq!(matches_with_attrs(&nfa, &["a", "b"], &root_attr), [1, 3]);
    }

    #[test]
    fn shared_prefixes_report_each_token_once() {
        let mut nfa = PathAutomaton::new();
        nfa.insert(1, xpe("/a/b"));
        nfa.insert(2, xpe("/a/b"));
        nfa.insert(3, xpe("/a/*"));
        nfa.insert(4, xpe("//b"));
        assert_eq!(matches(&nfa, &["a", "b"]), [1, 2, 3, 4]);
        // A path where the same accepting state is reachable at several
        // depths still reports once.
        let mut nfa = PathAutomaton::new();
        nfa.insert(7, xpe("//b"));
        assert_eq!(matches(&nfa, &["b", "b", "b"]), [7]);
    }

    #[test]
    fn remove_tombstones_and_reinsert() {
        let mut nfa = PathAutomaton::new();
        nfa.insert(1, xpe("/a/b"));
        nfa.insert(2, xpe("//b"));
        assert!(nfa.remove(1));
        assert!(!nfa.remove(1), "second removal is a no-op");
        assert_eq!(matches(&nfa, &["a", "b"]), [2]);
        nfa.insert(1, xpe("/a/b"));
        assert_eq!(matches(&nfa, &["a", "b"]), [1, 2]);
        assert_eq!(nfa.len(), 2);
    }

    #[test]
    fn reinsert_replaces_expression() {
        let mut nfa = PathAutomaton::new();
        nfa.insert(1, xpe("/a/b"));
        nfa.insert(1, xpe("/x/y"));
        assert_eq!(nfa.len(), 1);
        assert!(matches(&nfa, &["a", "b"]).is_empty());
        assert_eq!(matches(&nfa, &["x", "y"]), [1]);
        assert_eq!(nfa.xpe(1), Some(&xpe("/x/y")));
    }

    #[test]
    fn compaction_preserves_matches_and_resets_debt() {
        let mut nfa = PathAutomaton::new();
        for i in 0..100u64 {
            nfa.insert(i, xpe(&format!("/a/b{i}/c")));
        }
        for i in 0..80u64 {
            nfa.remove(i);
        }
        assert!(nfa.needs_compaction());
        let states_before = nfa.stats().states;
        nfa.compact();
        let stats = nfa.stats();
        assert!(stats.states < states_before, "tombstoned structure freed");
        assert_eq!(stats.tombstone_steps, 0);
        assert_eq!(stats.compactions_total, 1);
        assert!(!nfa.needs_compaction());
        for i in 80..100u64 {
            assert_eq!(matches(&nfa, &["a", &format!("b{i}"), "c"]), [i]);
        }
        assert!(matches(&nfa, &["a", "b0", "c"]).is_empty());
    }

    #[test]
    fn stats_track_traversal_work() {
        let mut nfa = PathAutomaton::new();
        nfa.insert(1, xpe("/a/b"));
        let before = nfa.stats();
        assert_eq!(before.live_subs, 1);
        let _ = matches(&nfa, &["a", "b"]);
        let after = nfa.stats();
        assert!(after.transitions_total > before.transitions_total);
        assert!(after.peak_active_states >= 1);
    }

    #[test]
    fn hash_promotion_keeps_lookups_exact() {
        let mut nfa = PathAutomaton::new();
        // Fan the root out past the promotion threshold.
        for i in 0..3 * HASH_FANOUT as u64 {
            nfa.insert(i, xpe(&format!("/e{i}")));
        }
        for i in 0..3 * HASH_FANOUT as u64 {
            assert_eq!(matches(&nfa, &[&format!("e{i}")]), [i]);
        }
        assert!(matches(&nfa, &["nope"]).is_empty());
    }

    #[test]
    fn clone_matches_independently() {
        let mut nfa = PathAutomaton::new();
        nfa.insert(1, xpe("/a/b"));
        let copy = nfa.clone();
        nfa.remove(1);
        assert!(matches(&nfa, &["a", "b"]).is_empty());
        assert_eq!(matches(&copy, &["a", "b"]), [1]);
    }

    /// Exhaustive-ish differential check against the reference matcher
    /// over a small alphabet (the proptest suite in `xdn-core` extends
    /// this across routers and churn).
    #[test]
    fn agrees_with_reference_matcher() {
        let exprs = [
            "/a/b", "/a/*", "//b", "a/b", "*/b", "/a//b", "/a//a", "a//c", ".//c", "//*",
            "/a//b/c", "/*/*", "b", "/b",
        ];
        let names = ["a", "b", "c"];
        let mut nfa = PathAutomaton::new();
        for (i, e) in exprs.iter().enumerate() {
            nfa.insert(i as u64, xpe(e));
        }
        let mut paths: Vec<Vec<&str>> = Vec::new();
        for x in names {
            paths.push(vec![x]);
            for y in names {
                paths.push(vec![x, y]);
                for z in names {
                    paths.push(vec![x, y, z]);
                    for w in names {
                        paths.push(vec![x, y, z, w]);
                    }
                }
            }
        }
        for path in &paths {
            let expected: Vec<u64> = exprs
                .iter()
                .enumerate()
                .filter(|(_, e)| matches_path_with_attrs(&xpe(e), path, &[]))
                .map(|(i, _)| i as u64)
                .collect();
            assert_eq!(matches(&nfa, path), expected, "divergence on {path:?}");
        }
    }
}
