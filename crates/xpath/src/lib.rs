#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! # xdn-xpath — XPath expressions (XPEs) for content-based routing
//!
//! Subscriptions in the dissemination network are XPath expressions
//! over the fragment the paper routes on (§3.2): the parent-child
//! operator `/`, the ancestor-descendant operator `//`, and the
//! wildcard `*`, in absolute (`/a/*/b`) or relative (`a//b`) form.
//!
//! This crate provides:
//!
//! * the XPE data model ([`Xpe`], [`Step`], [`Axis`], [`NodeTest`]) and
//!   a parser ([`Xpe::parse`]),
//! * publication matching ([`Xpe::matches_path`],
//!   [`matching::matches_document`]) — deciding whether a root-to-leaf
//!   XML path satisfies a subscription,
//! * the shared subscription automaton ([`automaton::PathAutomaton`]) —
//!   every registered XPE compiled into one NFA so a publication is
//!   matched against the whole set in a single traversal,
//! * a DTD-guided random XPE generator ([`generate`]) standing in for
//!   the XPath generator of Diao et al. used in the paper's evaluation,
//!   parameterized by the wildcard probability `W` and the
//!   descendant-operator probability `DO` exactly as in §5.
//!
//! ```
//! use xdn_xpath::Xpe;
//!
//! let sub: Xpe = "/quotes/*//price".parse()?;
//! assert!(sub.matches_path(&["quotes", "nyse", "stock", "price"]));
//! assert!(!sub.matches_path(&["quotes", "price"]));
//! # Ok::<(), xdn_xpath::XpeParseError>(())
//! ```

pub mod ast;
pub mod automaton;
pub mod generate;
pub mod matching;
pub mod parse;

pub use ast::{Axis, NodeTest, Predicate, Step, Xpe};
pub use parse::XpeParseError;
