#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! # xdn — XML/XPath routing for data dissemination networks
//!
//! A reproduction of *"Routing of XML and XPath Queries in Data
//! Dissemination Networks"* (Li, Hou, Jacobsen — ICDCS 2008): an
//! overlay network of content-based XML routers that forward documents
//! to XPath subscriptions using advertisement-based routing, covering,
//! and merging.
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`xml`] — XML documents, DTDs, path extraction, generation;
//! * [`xpath`] — the XPE subscription language and matching;
//! * [`core`] — advertisements, overlap, covering, the subscription
//!   tree, merging, and the routing tables (the paper's contribution);
//! * [`broker`] — the content-based XML router;
//! * [`net`] — the simulated and live overlay substrates;
//! * [`obs`] — metrics, trace events, and text exporters;
//! * [`workloads`] — DTDs and generated workloads for the evaluation.
//!
//! ```
//! use xdn::core::cover::covers;
//!
//! let wide: xdn::xpath::Xpe = "/news//headline".parse()?;
//! let narrow: xdn::xpath::Xpe = "/news/sports/headline".parse()?;
//! assert!(covers(&wide, &narrow));
//! # Ok::<(), xdn::xpath::XpeParseError>(())
//! ```

pub use xdn_broker as broker;
pub use xdn_core as core;
pub use xdn_net as net;
pub use xdn_obs as obs;
pub use xdn_workloads as workloads;
pub use xdn_xml as xml;
pub use xdn_xpath as xpath;
