//! The lightweight AST behind `cargo xtask analyze`.
//!
//! This is not a faithful Rust grammar — it is the minimal shape the
//! semantic passes need, produced by [`crate::parser`] from the token
//! stream of [`crate::lexer`]:
//!
//! * every function (free, inherent, trait-provided), with its owner
//!   type, source line, and test-ness;
//! * every enum with its variants;
//! * per-function *operation lists*: calls (method / path / bare /
//!   macro), index expressions, string literals, enum-path references
//!   split by pattern vs. expression position, and just enough block /
//!   statement structure (`{`, `}`, `;`, `let`) for the lock pass to
//!   approximate guard lifetimes.
//!
//! Control flow, types, and trait resolution are deliberately absent:
//! the passes over-approximate (name-based call resolution, ratchet
//! baselines for the long tail) rather than chase precision an
//! offline, dependency-free tool cannot afford.

use std::path::PathBuf;

/// One parsed source file.
#[derive(Debug, Default)]
pub struct ParsedFile {
    /// Workspace-relative path.
    pub path: PathBuf,
    /// Every function found, flattened (module nesting is not kept).
    pub fns: Vec<FnDef>,
    /// Every enum found.
    pub enums: Vec<EnumDef>,
    /// `const`/`static` initializers, kept separate from functions so
    /// they never become call-graph nodes but their enum references
    /// stay visible (the `MessageKind::ALL` exhaustiveness check).
    pub consts: Vec<ConstDef>,
    /// `(rule, line)` waiver markers copied from the lexer.
    pub allows: Vec<(String, u32)>,
    /// The file mentions `RwLock`: only then do `.read()`/`.write()`
    /// count as lock acquisitions (they are ubiquitous I/O names
    /// otherwise).
    pub mentions_rwlock: bool,
}

impl ParsedFile {
    /// Whether a finding of `rule` on `line` is waived by an
    /// `xtask: allow(rule)` marker on the line or the line above.
    pub fn allowed(&self, rule: &str, line: u32) -> bool {
        self.allows
            .iter()
            .any(|(r, l)| r == rule && (*l == line || l + 1 == line))
    }
}

/// A function definition.
#[derive(Debug)]
pub struct FnDef {
    /// The function's bare name.
    pub name: String,
    /// The `impl` (or `trait`) type the function is defined on, if any.
    pub owner: Option<String>,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Inside a `#[cfg(test)]` module or carrying a `#[test]`-ish
    /// attribute.
    pub is_test: bool,
    /// The body's operation list, in token order.
    pub body: Vec<Op>,
}

impl FnDef {
    /// `Owner::name` for methods, `name` for free functions.
    pub fn qualified(&self) -> String {
        match &self.owner {
            Some(o) => format!("{o}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// A `const` or `static` item with a scanned initializer.
#[derive(Debug)]
pub struct ConstDef {
    /// The item's name.
    pub name: String,
    /// Enclosing `impl`/`trait` type, if any.
    pub owner: Option<String>,
    /// 1-based line of the item.
    pub line: u32,
    /// Inside a test region.
    pub is_test: bool,
    /// Operations in the initializer expression.
    pub body: Vec<Op>,
}

/// An enum definition.
#[derive(Debug)]
pub struct EnumDef {
    /// The enum's name.
    pub name: String,
    /// `(variant, line)` pairs in declaration order.
    pub variants: Vec<(String, u32)>,
    /// Inside a test region.
    pub is_test: bool,
}

/// One operation inside a function body, in token order.
///
/// `paren_depth` / `brace_depth` are measured from the body's opening
/// brace (`0` = statement level); the lock pass uses them to scope
/// guard lifetimes without a real expression tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Op {
    /// `recv.name(..)`.
    MethodCall {
        /// The method name.
        name: String,
        /// The receiver is literally `self`.
        recv_self: bool,
        /// Last identifier of the receiver chain (`stats` for
        /// `self.link.stats.lock()`), used to name locks.
        recv_last: Option<String>,
        /// Parenthesis depth at the call.
        paren_depth: u32,
        /// 1-based source line.
        line: u32,
    },
    /// `a::b::name(..)`.
    PathCall {
        /// Second-to-last path segment (`mem` for `std::mem::take`).
        qualifier: Option<String>,
        /// Final segment.
        name: String,
        /// Last identifier inside the argument list, if any — lets the
        /// lock pass name the lock behind `lock_clean(&self.addr)`.
        arg_last: Option<String>,
        /// Parenthesis depth at the call.
        paren_depth: u32,
        /// 1-based source line.
        line: u32,
    },
    /// A bare `name(..)` call.
    BareCall {
        /// The callee name.
        name: String,
        /// Last identifier inside the argument list, if any.
        arg_last: Option<String>,
        /// Parenthesis depth at the call.
        paren_depth: u32,
        /// 1-based source line.
        line: u32,
    },
    /// `name!(..)` / `name![..]` / `name!{..}`.
    Macro {
        /// Macro name without the `!`.
        name: String,
        /// 1-based source line.
        line: u32,
    },
    /// An index or slice expression `expr[..]`.
    Index {
        /// 1-based source line.
        line: u32,
    },
    /// A string literal in expression position.
    Str {
        /// The literal's inner text.
        value: String,
        /// 1-based source line.
        line: u32,
    },
    /// `Enum::Variant` in *pattern* position (match arm, `if let`,
    /// `matches!` pattern).
    PatVariant {
        /// The enum (path's second-to-last segment).
        enumeration: String,
        /// The variant.
        variant: String,
        /// 1-based source line.
        line: u32,
    },
    /// `Enum::Variant` in *expression* position (construction or value
    /// reference).
    ExprVariant {
        /// The enum.
        enumeration: String,
        /// The variant.
        variant: String,
        /// 1-based source line.
        line: u32,
    },
    /// `{` inside the body.
    Open,
    /// `}` inside the body.
    Close,
    /// `;` at delimiter depth 0 (statement end). Semicolons inside
    /// parens/brackets (`[0; 4]`) are not emitted.
    Semi,
    /// Start of a `let` statement.
    LetStart {
        /// Paren depth of the statement (non-zero inside closures).
        paren_depth: u32,
        /// 1-based source line.
        line: u32,
    },
    /// First binding identifier of a `let` pattern.
    Bind {
        /// The bound name.
        name: String,
    },
}

impl Op {
    /// The source line, where the op has one.
    pub fn line(&self) -> Option<u32> {
        match self {
            Op::MethodCall { line, .. }
            | Op::PathCall { line, .. }
            | Op::BareCall { line, .. }
            | Op::Macro { line, .. }
            | Op::Index { line }
            | Op::Str { line, .. }
            | Op::PatVariant { line, .. }
            | Op::ExprVariant { line, .. }
            | Op::LetStart { line, .. } => Some(*line),
            Op::Open | Op::Close | Op::Semi | Op::Bind { .. } => None,
        }
    }
}
