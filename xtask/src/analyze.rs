//! `cargo xtask analyze` — semantic passes over the workspace AST and
//! call graph (see DESIGN.md §13):
//!
//! 1. **panic-path** — panic sources (`unwrap`/`expect`/`panic!`/
//!    `unreachable!`/`todo!`/`unimplemented!`/indexing/slicing)
//!    transitively reachable from the hot-path roots. Ratchet-only:
//!    known sites live in `xtask/analyze-baseline.txt`; only *new*
//!    sites fail the gate.
//! 2. **lock-order** — per-function lock acquisition sequences,
//!    propagated through the call graph; inconsistent pairwise
//!    orderings fail.
//! 3. **protocol** — `Message`/`MessageKind` exhaustiveness in wire
//!    encode/decode, broker dispatch, and the `MessageKind::ALL`
//!    table backing `KindCounters`, plus the no-nested-`Sequenced`
//!    rules.
//! 4. **metric-drift** — metric names registered in non-test code vs.
//!    those asserted by scrape tests/CI greps vs. those documented in
//!    DESIGN.md §10.
//!
//! Waive an intentional finding with `// xtask: allow(<rule>)` on the
//! line above it, like the lint rules.

use crate::ast::{Op, ParsedFile};
use crate::callgraph::{Graph, NodeId};
use crate::lint::{collect_rs_files, Finding};
use crate::parser::parse_file;
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// Hot-path roots for the panic pass: `(owner, name)` where `*` as the
/// owner matches any impl (trait impls are matched by name) and a
/// trailing `*` on the name matches any suffix.
const PANIC_ROOTS: &[(&str, &str)] = &[
    ("Broker", "handle*"),
    ("*", "matching_hops"),
    ("*", "route_batch"),
    ("OutboundLink", "wrap"),
    ("OutboundLink", "on_ack"),
    ("OutboundLink", "replay"),
    ("DedupWindow", "observe"),
];

/// Functions that acquire the lock named by their first argument
/// (`lock_clean(&self.addr)` acquires `addr`).
const LOCK_WRAPPERS: &[&str] = &["lock_clean"];

/// Files allowed to construct `Message::Sequenced` in non-test code.
const SEQUENCED_BUILDERS: &[&str] = &["reliable.rs", "wire.rs"];

/// Crate-path identifiers that the metric-name scanner must not
/// mistake for metric families.
const METRIC_NON_NAMES: &[&str] = &[
    "xdn_core",
    "xdn_net",
    "xdn_broker",
    "xdn_obs",
    "xdn_xml",
    "xdn_xpath",
    "xdn_workloads",
    "xdn_bench",
    "xdn_node",
];

/// The scrape-test files whose test-region string literals count as
/// "asserted" metric names.
const SCRAPE_TEST_FILES: &[&str] = &["crates/net/src/tcp.rs"];

/// Everything one `analyze` run produced.
pub struct Analysis {
    /// Gate-failing findings, sorted by file and line.
    pub findings: Vec<Finding>,
    /// Machine-readable report (JSON text).
    pub report: String,
    /// Files parsed.
    pub files: usize,
    /// Functions in the symbol table.
    pub fns: usize,
    /// Baseline entries that no longer occur (candidates to delete).
    pub stale_baseline: Vec<String>,
    /// Current panic-path keys (for `--write-baseline`).
    pub panic_keys: Vec<String>,
}

/// Runs every pass over the workspace at `root`.
///
/// # Errors
///
/// Returns an error if the tree cannot be read.
pub fn analyze_workspace(root: &Path) -> Result<Analysis, std::io::Error> {
    let mut paths = Vec::new();
    collect_rs_files(root, root, &mut paths)?;
    paths.sort();
    let mut files = Vec::with_capacity(paths.len());
    for rel in &paths {
        let src = std::fs::read_to_string(root.join(rel))?;
        files.push(parse_file(rel.clone(), &src));
    }
    let graph = Graph::build(&files);

    let baseline = read_baseline(&root.join("xtask/analyze-baseline.txt"));
    let mut findings = Vec::new();

    let panic_stats = panic_pass(&graph, &baseline, &mut findings);
    let lock_stats = lock_pass(&graph, &mut findings);
    let proto_stats = protocol_pass(&graph, &mut findings);
    let metric_stats = metric_pass(root, &files, &mut findings);

    findings.sort_by(|a, b| (&a.file, a.line, &a.message).cmp(&(&b.file, b.line, &b.message)));
    findings.dedup();

    let stale_baseline: Vec<String> = baseline
        .iter()
        .filter(|k| !panic_stats.keys.contains(*k))
        .cloned()
        .collect();
    let report = render_report(
        files.len(),
        graph.nodes.len(),
        &graph,
        &panic_stats,
        &lock_stats,
        &proto_stats,
        &metric_stats,
        baseline.len(),
        &stale_baseline,
        &findings,
    );
    Ok(Analysis {
        findings,
        report,
        files: files.len(),
        fns: graph.nodes.len(),
        stale_baseline,
        panic_keys: panic_stats.keys.iter().cloned().collect(),
    })
}

/// Reads the ratchet baseline: one `file<TAB>function<TAB>kind` key per
/// line, `#` comments ignored. A missing file is an empty baseline.
fn read_baseline(path: &Path) -> BTreeSet<String> {
    std::fs::read_to_string(path)
        .map(|text| {
            text.lines()
                .map(str::trim)
                .filter(|l| !l.is_empty() && !l.starts_with('#'))
                .map(str::to_owned)
                .collect()
        })
        .unwrap_or_default()
}

// ---------------------------------------------------------------- panic

struct PanicStats {
    roots: usize,
    reachable: usize,
    sources: usize,
    baselined: usize,
    keys: BTreeSet<String>,
}

/// What a body op means as a panic source, if anything.
fn panic_source(op: &Op) -> Option<(&'static str, u32)> {
    match op {
        Op::MethodCall { name, line, .. } if name == "unwrap" => Some(("unwrap()", *line)),
        Op::MethodCall { name, line, .. } if name == "expect" => Some(("expect()", *line)),
        Op::Macro { name, line } => match name.as_str() {
            "panic" => Some(("panic!", *line)),
            "unreachable" => Some(("unreachable!", *line)),
            "todo" => Some(("todo!", *line)),
            "unimplemented" => Some(("unimplemented!", *line)),
            _ => None,
        },
        Op::Index { line } => Some(("indexing", *line)),
        _ => None,
    }
}

fn panic_pass(
    graph: &Graph<'_>,
    baseline: &BTreeSet<String>,
    findings: &mut Vec<Finding>,
) -> PanicStats {
    // BFS from the roots, keeping a parent chain (and the call line
    // that discovered each node) for diagnostics.
    let mut parent: BTreeMap<NodeId, Option<(NodeId, u32)>> = BTreeMap::new();
    let mut queue = VecDeque::new();
    let mut roots = 0usize;
    for (owner, name) in PANIC_ROOTS {
        for id in graph.matching(owner, name) {
            if let std::collections::btree_map::Entry::Vacant(slot) = parent.entry(id) {
                slot.insert(None);
                queue.push_back(id);
                roots += 1;
            }
        }
    }
    while let Some(id) = queue.pop_front() {
        for e in &graph.edges[id] {
            if let std::collections::btree_map::Entry::Vacant(slot) = parent.entry(e.to) {
                slot.insert(Some((id, e.line)));
                queue.push_back(e.to);
            }
        }
    }
    let mut stats = PanicStats {
        roots,
        reachable: parent.len(),
        sources: 0,
        baselined: 0,
        keys: BTreeSet::new(),
    };
    for &id in parent.keys() {
        let def = graph.def(id);
        let file = graph.file(id);
        for op in &def.body {
            let Some((kind, line)) = panic_source(op) else {
                continue;
            };
            stats.sources += 1;
            if file.allowed("panic-path", line) {
                continue;
            }
            let key = format!("{}\t{}\t{}", file.path.display(), def.qualified(), kind);
            let fresh = stats.keys.insert(key.clone());
            if baseline.contains(&key) {
                if fresh {
                    stats.baselined += 1;
                }
                continue;
            }
            findings.push(Finding {
                file: file.path.clone(),
                line,
                rule: "panic-path",
                message: format!(
                    "{kind} in {} is reachable from a hot path: {}",
                    def.qualified(),
                    chain_to(graph, &parent, id)
                ),
            });
        }
    }
    stats
}

/// The call chain `root → … → id`, abbreviated in the middle when
/// long. The root is annotated with its definition site and the last
/// hop with the call that enters the panicking function, so a reader
/// can walk the chain without re-running the graph.
fn chain_to(
    graph: &Graph<'_>,
    parent: &BTreeMap<NodeId, Option<(NodeId, u32)>>,
    id: NodeId,
) -> String {
    let mut chain = vec![id];
    // (caller's file, line) of the call into the panicking function.
    let mut entry: Option<(String, u32)> = None;
    let mut cur = id;
    while let Some(Some((p, line))) = parent.get(&cur) {
        if entry.is_none() {
            entry = Some((file_name(graph.file(*p)), *line));
        }
        chain.push(*p);
        cur = *p;
    }
    chain.reverse();
    let mut names: Vec<String> = chain.iter().map(|&n| graph.def(n).qualified()).collect();
    let root = chain[0];
    names[0] = format!(
        "{} ({}:{})",
        names[0],
        file_name(graph.file(root)),
        graph.def(root).line
    );
    let mut rendered = if names.len() <= 6 {
        names.join(" → ")
    } else {
        format!(
            "{} → … → {}",
            names[..2].join(" → "),
            names[names.len() - 2..].join(" → ")
        )
    };
    if let Some((file, line)) = entry {
        let _ = write!(rendered, " (call at {file}:{line})");
    }
    rendered
}

/// Just the file name of a parsed file, for compact chain rendering.
fn file_name(file: &ParsedFile) -> String {
    file.path.file_name().map_or_else(
        || file.path.display().to_string(),
        |n| n.to_string_lossy().into_owned(),
    )
}

// ---------------------------------------------------------------- locks

struct LockStats {
    locking_fns: usize,
    ordered_pairs: usize,
    inversions: usize,
}

/// The lock a body op acquires, if any.
fn acquisition(op: &Op, mentions_rwlock: bool) -> Option<(String, u32, u32)> {
    match op {
        Op::MethodCall {
            name,
            recv_last: Some(recv),
            paren_depth,
            line,
            ..
        } if name == "lock"
            || name == "try_lock"
            || (mentions_rwlock && (name == "read" || name == "write")) =>
        {
            Some((recv.clone(), *paren_depth, *line))
        }
        Op::BareCall {
            name,
            arg_last: Some(arg),
            paren_depth,
            line,
        }
        | Op::PathCall {
            name,
            arg_last: Some(arg),
            paren_depth,
            line,
            ..
        } if LOCK_WRAPPERS.contains(&name.as_str()) => Some((arg.clone(), *paren_depth, *line)),
        _ => None,
    }
}

#[derive(Debug)]
struct HeldLock {
    name: String,
    brace: u32,
    bound: Option<String>,
}

/// One observed `first → second` ordering.
#[derive(Debug, Clone)]
struct OrderSite {
    file: PathBuf,
    line: u32,
    in_fn: String,
    via: Option<String>,
    waived: bool,
}

fn lock_pass(graph: &Graph<'_>, findings: &mut Vec<Finding>) -> LockStats {
    // Transitive lock sets per function (fixpoint over the graph).
    let n = graph.nodes.len();
    let mut trans: Vec<BTreeSet<String>> = (0..n)
        .map(|id| {
            let file = graph.file(id);
            graph
                .def(id)
                .body
                .iter()
                .filter_map(|op| acquisition(op, file.mentions_rwlock))
                .map(|(name, _, _)| name)
                .collect()
        })
        .collect();
    let locking_fns = trans.iter().filter(|s| !s.is_empty()).count();
    loop {
        let mut changed = false;
        for id in 0..n {
            let mut add = Vec::new();
            for e in &graph.edges[id] {
                for l in &trans[e.to] {
                    if !trans[id].contains(l) {
                        add.push(l.clone());
                    }
                }
            }
            if !add.is_empty() {
                changed = true;
                trans[id].extend(add);
            }
        }
        if !changed {
            break;
        }
    }

    // Simulate each body, recording ordered pairs.
    let mut pairs: BTreeMap<(String, String), Vec<OrderSite>> = BTreeMap::new();
    for id in 0..n {
        let def = graph.def(id);
        if def.is_test {
            continue;
        }
        let file = graph.file(id);
        let mut held: Vec<HeldLock> = Vec::new();
        let mut brace = 0u32;
        // `(paren depth, last bind)` of an open `let` statement.
        let mut pending_let: Option<(u32, Option<String>)> = None;
        for op in &def.body {
            // `drop(g)` releases a bound guard before anything else.
            if let Op::BareCall {
                name,
                arg_last: Some(arg),
                ..
            } = op
            {
                if name == "drop" {
                    held.retain(|h| h.bound.as_deref() != Some(arg.as_str()));
                    continue;
                }
            }
            if let Some((lock, paren, line)) = acquisition(op, file.mentions_rwlock) {
                let bound = match &pending_let {
                    Some((p, bind)) if *p == paren => bind.clone(),
                    _ => None,
                };
                let waived = file.allowed("lock-order", line);
                for h in &held {
                    if h.name != lock {
                        pairs
                            .entry((h.name.clone(), lock.clone()))
                            .or_default()
                            .push(OrderSite {
                                file: file.path.clone(),
                                line,
                                in_fn: def.qualified(),
                                via: None,
                                waived,
                            });
                    }
                }
                held.push(HeldLock {
                    name: lock,
                    brace,
                    bound,
                });
                continue;
            }
            match op {
                Op::LetStart { paren_depth, .. } => pending_let = Some((*paren_depth, None)),
                Op::Bind { name } => {
                    if let Some((_, bind)) = &mut pending_let {
                        *bind = Some(name.clone());
                    }
                }
                Op::Semi => {
                    held.retain(|h| h.bound.is_some() || h.brace < brace);
                    pending_let = None;
                }
                Op::Open => brace += 1,
                Op::Close => {
                    brace = brace.saturating_sub(1);
                    held.retain(|h| h.brace <= brace);
                }
                _ => {
                    if !held.is_empty() {
                        let line = op.line().unwrap_or(0);
                        let waived = file.allowed("lock-order", line);
                        for callee in graph.resolve_call(id, op) {
                            for l in trans[callee].clone() {
                                for h in &held {
                                    if h.name != l {
                                        pairs.entry((h.name.clone(), l.clone())).or_default().push(
                                            OrderSite {
                                                file: file.path.clone(),
                                                line,
                                                in_fn: def.qualified(),
                                                via: Some(graph.def(callee).qualified()),
                                                waived,
                                            },
                                        );
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
    }

    // Inversions: both (a,b) and (b,a) observed.
    let mut inversions = 0usize;
    let keys: Vec<(String, String)> = pairs.keys().cloned().collect();
    for (a, b) in &keys {
        if a >= b {
            continue;
        }
        let (Some(fwd), Some(rev)) = (
            pairs.get(&(a.clone(), b.clone())),
            pairs.get(&(b.clone(), a.clone())),
        ) else {
            continue;
        };
        if fwd.iter().all(|s| s.waived) || rev.iter().all(|s| s.waived) {
            continue;
        }
        inversions += 1;
        for (here, there, x, y) in [(fwd, rev, a, b), (rev, fwd, b, a)] {
            let site = &here[0];
            let other = &there[0];
            let via = site
                .via
                .as_ref()
                .map(|v| format!(" (via {v})"))
                .unwrap_or_default();
            findings.push(Finding {
                file: site.file.clone(),
                line: site.line,
                rule: "lock-order",
                message: format!(
                    "{} acquires `{x}` then `{y}`{via}, but {}:{} ({}) orders them `{y}` then `{x}`",
                    site.in_fn,
                    other.file.display(),
                    other.line,
                    other.in_fn
                ),
            });
        }
    }
    LockStats {
        locking_fns,
        ordered_pairs: pairs.len(),
        inversions,
    }
}

// ------------------------------------------------------------- protocol

struct ProtoStats {
    message_variants: usize,
    kind_variants: usize,
    violations: usize,
}

/// Variant names of `enumeration` referenced in pattern (or, with
/// `expr`, expression) position across a file's non-test functions.
fn variant_refs(files: &[&ParsedFile], enumeration: &str, expr: bool) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    for file in files {
        for def in file.fns.iter().filter(|d| !d.is_test) {
            for op in &def.body {
                match op {
                    Op::PatVariant {
                        enumeration: e,
                        variant,
                        ..
                    } if !expr && e == enumeration => {
                        out.insert(variant.clone());
                    }
                    Op::ExprVariant {
                        enumeration: e,
                        variant,
                        ..
                    } if expr && e == enumeration => {
                        out.insert(variant.clone());
                    }
                    _ => {}
                }
            }
        }
    }
    out
}

fn protocol_pass(graph: &Graph<'_>, findings: &mut Vec<Finding>) -> ProtoStats {
    let files = graph.files;
    let mut stats = ProtoStats {
        message_variants: 0,
        kind_variants: 0,
        violations: 0,
    };
    let Some(message_file) = files.iter().find(|f| {
        f.path.ends_with("src/message.rs")
            && f.path.to_string_lossy().contains("broker")
            && f.enums.iter().any(|e| e.name == "Message" && !e.is_test)
    }) else {
        return stats; // Not a broker workspace (plain fixture trees).
    };
    let dir = message_file.path.parent().unwrap_or(Path::new(""));
    let sibling = |name: &str| files.iter().find(|f| f.path == dir.join(name));
    let message = message_file
        .enums
        .iter()
        .find(|e| e.name == "Message" && !e.is_test);
    let kind = message_file
        .enums
        .iter()
        .find(|e| e.name == "MessageKind" && !e.is_test);
    let before = findings.len();

    if let (Some(message), Some(wire)) = (message, sibling("wire.rs")) {
        stats.message_variants = message.variants.len();
        let encoded = variant_refs(&[wire], "Message", false);
        let decoded = variant_refs(&[wire], "Message", true);
        for (v, line) in &message.variants {
            for (set, side) in [
                (&encoded, "matched (encode path)"),
                (&decoded, "constructed (decode path)"),
            ] {
                if !set.contains(v) && !message_file.allowed("protocol", *line) {
                    findings.push(Finding {
                        file: message_file.path.clone(),
                        line: *line,
                        rule: "protocol",
                        message: format!("Message::{v} is never {side} in {}", wire.path.display()),
                    });
                }
            }
        }
    }
    if let (Some(message), Some(broker)) = (message, sibling("broker.rs")) {
        // Dispatch coverage: the `handle*` family on `Broker`.
        let mut dispatched = BTreeSet::new();
        for def in broker.fns.iter().filter(|d| {
            !d.is_test && d.owner.as_deref() == Some("Broker") && d.name.starts_with("handle")
        }) {
            for op in &def.body {
                if let Op::PatVariant {
                    enumeration,
                    variant,
                    ..
                } = op
                {
                    if enumeration == "Message" {
                        dispatched.insert(variant.clone());
                    }
                }
            }
        }
        for (v, line) in &message.variants {
            if !dispatched.contains(v) && !message_file.allowed("protocol", *line) {
                findings.push(Finding {
                    file: message_file.path.clone(),
                    line: *line,
                    rule: "protocol",
                    message: format!(
                        "Message::{v} has no dispatch arm in any Broker::handle* function of {}",
                        broker.path.display()
                    ),
                });
            }
        }
    }
    if let Some(kind) = kind {
        stats.kind_variants = kind.variants.len();
        // `MessageKind::ALL` must list every variant exactly once — it
        // backs `KindCounters` indexing, and the compiler cannot see a
        // duplicated or dropped entry.
        match message_file
            .consts
            .iter()
            .find(|c| c.name == "ALL" && c.owner.as_deref() == Some("MessageKind"))
        {
            Some(all) => {
                for (v, line) in &kind.variants {
                    let count = all
                        .body
                        .iter()
                        .filter(|op| {
                            matches!(
                                op,
                                Op::ExprVariant { enumeration, variant, .. }
                                    if enumeration == "MessageKind" && variant == v
                            )
                        })
                        .count();
                    if count != 1
                        && !message_file.allowed("protocol", *line)
                        && !message_file.allowed("protocol", all.line)
                    {
                        // The defect lives in the const, not the enum:
                        // point at `ALL`'s definition.
                        findings.push(Finding {
                            file: message_file.path.clone(),
                            line: all.line,
                            rule: "protocol",
                            message: format!(
                                "MessageKind::{v} appears {count}x in MessageKind::ALL \
                                 (KindCounters needs exactly one entry per variant)"
                            ),
                        });
                    }
                }
            }
            None => findings.push(Finding {
                file: message_file.path.clone(),
                line: 1,
                rule: "protocol",
                message: "MessageKind::ALL const not found (KindCounters coverage unverifiable)"
                    .to_owned(),
            }),
        }
        // Every kind must be produced somewhere in message.rs itself
        // (the `Message::kind()` mapping).
        let produced = variant_refs(&[message_file], "MessageKind", true);
        for (v, line) in &kind.variants {
            if !produced.contains(v) && !message_file.allowed("protocol", *line) {
                findings.push(Finding {
                    file: message_file.path.clone(),
                    line: *line,
                    rule: "protocol",
                    message: format!(
                        "MessageKind::{v} is never produced in {} (Message::kind mapping?)",
                        message_file.path.display()
                    ),
                });
            }
        }
    }

    // No nested Sequenced frames: construction is confined to the
    // reliable/wire layer, and every wrap() caller must guard against
    // already-sequenced frames.
    for (fi, file) in files.iter().enumerate() {
        let builder = SEQUENCED_BUILDERS
            .iter()
            .any(|n| file.path.ends_with(Path::new("src").join(n)));
        for (di, def) in file.fns.iter().enumerate() {
            if def.is_test {
                continue;
            }
            let guarded = def.body.iter().any(|op| {
                matches!(
                    op,
                    Op::PatVariant { enumeration, variant, .. }
                        if enumeration == "Message" && variant == "Sequenced"
                )
            });
            for op in &def.body {
                match op {
                    Op::ExprVariant {
                        enumeration,
                        variant,
                        line,
                    } if enumeration == "Message"
                        && variant == "Sequenced"
                        && !builder
                        && !file.allowed("protocol", *line) =>
                    {
                        findings.push(Finding {
                            file: file.path.clone(),
                            line: *line,
                            rule: "protocol",
                            message: format!(
                                "{} constructs Message::Sequenced outside the reliable/wire \
                                 layer (risks nesting sequenced frames)",
                                def.qualified()
                            ),
                        });
                    }
                    Op::MethodCall { name, line, .. } if name == "wrap" && !builder => {
                        let id = graph
                            .nodes
                            .iter()
                            .position(|&(f, d)| (f, d) == (fi, di))
                            .unwrap_or(0);
                        let hits_wrap = graph
                            .resolve_call(id, op)
                            .iter()
                            .any(|&t| graph.def(t).owner.as_deref() == Some("OutboundLink"));
                        if hits_wrap && !guarded && !file.allowed("protocol", *line) {
                            findings.push(Finding {
                                file: file.path.clone(),
                                line: *line,
                                rule: "protocol",
                                message: format!(
                                    "{} calls OutboundLink::wrap without matching on \
                                     Message::Sequenced first (nested frames possible)",
                                    def.qualified()
                                ),
                            });
                        }
                    }
                    _ => {}
                }
            }
        }
    }
    stats.violations = findings.len() - before;
    stats
}

// -------------------------------------------------------------- metrics

struct MetricStats {
    registered: usize,
    asserted: usize,
    documented: usize,
    violations: usize,
}

/// Metric-family names inside a text fragment: `xdn_`-prefixed
/// identifiers that are not crate paths (`xdn_obs::…`), wildcards
/// (`xdn_match_pool_*` → trailing `_`), or known crate names.
fn scan_metric_names(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    let bytes = text.as_bytes();
    let mut i = 0usize;
    while let Some(pos) = text[i..].find("xdn_") {
        let start = i + pos;
        // Must begin an identifier.
        if start > 0 {
            let prev = bytes[start - 1] as char;
            if prev.is_ascii_alphanumeric() || prev == '_' {
                i = start + 4;
                continue;
            }
        }
        let mut end = start;
        while end < bytes.len()
            && ((bytes[end] as char).is_ascii_lowercase()
                || (bytes[end] as char).is_ascii_digit()
                || bytes[end] == b'_')
        {
            end += 1;
        }
        let name = &text[start..end];
        i = end.max(start + 4);
        if name.ends_with('_') || METRIC_NON_NAMES.contains(&name) {
            continue;
        }
        // Crate paths (`xdn_foo::bar`) are not metric names.
        if text[end..].starts_with("::") {
            continue;
        }
        if name.len() > 4 {
            out.push(name.to_owned());
        }
    }
    out
}

/// Strips a Prometheus histogram sample suffix when the remainder is a
/// registered family.
fn canonical<'a>(name: &'a str, registered: &BTreeSet<String>) -> &'a str {
    for suffix in ["_bucket", "_sum", "_count"] {
        if let Some(stem) = name.strip_suffix(suffix) {
            if registered.contains(stem) {
                return stem;
            }
        }
    }
    name
}

fn metric_pass(root: &Path, files: &[ParsedFile], findings: &mut Vec<Finding>) -> MetricStats {
    let before = findings.len();
    // Registered: every xdn_ string literal in non-test code under
    // crates/ (registration sites; the convention is enforced by the
    // doc-equality check below).
    let mut registered: BTreeMap<String, (PathBuf, u32)> = BTreeMap::new();
    let mut asserted: Vec<(String, PathBuf, u32)> = Vec::new();
    for file in files {
        if !file.path.starts_with("crates") {
            continue;
        }
        let is_scrape_test_file = SCRAPE_TEST_FILES.iter().any(|p| file.path == Path::new(p));
        let bodies = file
            .fns
            .iter()
            .map(|d| (d.is_test, &d.body))
            .chain(file.consts.iter().map(|c| (c.is_test, &c.body)));
        for (is_test, body) in bodies {
            for op in body {
                let Op::Str { value, line } = op else {
                    continue;
                };
                for name in scan_metric_names(value) {
                    if !is_test {
                        registered
                            .entry(name)
                            .or_insert_with(|| (file.path.clone(), *line));
                    } else if is_scrape_test_file {
                        asserted.push((name, file.path.clone(), *line));
                    }
                }
            }
        }
    }
    let registered_names: BTreeSet<String> = registered.keys().cloned().collect();

    // CI greps count as assertions too.
    let ci_path = root.join(".github/workflows/ci.yml");
    if let Ok(ci) = std::fs::read_to_string(&ci_path) {
        for (idx, line) in ci.lines().enumerate() {
            for name in scan_metric_names(line) {
                asserted.push((
                    name,
                    PathBuf::from(".github/workflows/ci.yml"),
                    idx as u32 + 1,
                ));
            }
        }
    }
    let asserted_names: BTreeSet<String> = asserted
        .iter()
        .map(|(n, _, _)| canonical(n, &registered_names).to_owned())
        .collect();
    for (name, file, line) in &asserted {
        let stem = canonical(name, &registered_names);
        if !registered_names.contains(stem) {
            findings.push(Finding {
                file: file.clone(),
                line: *line,
                rule: "metric-drift",
                message: format!("test/CI asserts metric `{name}` which no code registers"),
            });
        }
    }

    // DESIGN.md must document exactly the registered set.
    let mut documented: BTreeMap<String, u32> = BTreeMap::new();
    let design_path = root.join("DESIGN.md");
    if let Ok(design) = std::fs::read_to_string(&design_path) {
        for (idx, line) in design.lines().enumerate() {
            for name in scan_metric_names(line) {
                documented.entry(name).or_insert(idx as u32 + 1);
            }
        }
        for (name, line) in &documented {
            let stem = canonical(name, &registered_names);
            if !registered_names.contains(stem) {
                findings.push(Finding {
                    file: PathBuf::from("DESIGN.md"),
                    line: *line,
                    rule: "metric-drift",
                    message: format!("DESIGN.md documents metric `{name}` which no code registers"),
                });
            }
        }
        for (name, (file, line)) in &registered {
            let covered = documented
                .keys()
                .any(|d| canonical(d, &registered_names) == name);
            if !covered {
                findings.push(Finding {
                    file: file.clone(),
                    line: *line,
                    rule: "metric-drift",
                    message: format!(
                        "metric `{name}` is registered here but undocumented in DESIGN.md §10"
                    ),
                });
            }
        }
    }
    MetricStats {
        registered: registered.len(),
        asserted: asserted_names.len(),
        documented: documented.len(),
        violations: findings.len() - before,
    }
}

// --------------------------------------------------------------- report

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[allow(clippy::too_many_arguments)]
fn render_report(
    files: usize,
    fns: usize,
    graph: &Graph<'_>,
    panic: &PanicStats,
    locks: &LockStats,
    proto: &ProtoStats,
    metrics: &MetricStats,
    baseline_entries: usize,
    stale: &[String],
    findings: &[Finding],
) -> String {
    let edges: usize = graph.edges.iter().map(Vec::len).sum();
    let mut out = String::new();
    let _ = write!(
        out,
        "{{\n  \"schema\": 1,\n  \"files\": {files},\n  \"functions\": {fns},\n  \
         \"call_edges\": {edges},\n  \"passes\": {{\n    \
         \"panic_reachability\": {{\"roots\": {}, \"reachable_fns\": {}, \"sources\": {}, \
         \"baselined\": {}}},\n    \
         \"lock_order\": {{\"locking_fns\": {}, \"ordered_pairs\": {}, \"inversions\": {}}},\n    \
         \"protocol\": {{\"message_variants\": {}, \"kind_variants\": {}, \"violations\": {}}},\n    \
         \"metric_drift\": {{\"registered\": {}, \"asserted\": {}, \"documented\": {}, \
         \"violations\": {}}}\n  }},\n  \
         \"baseline\": {{\"entries\": {baseline_entries}, \"stale\": [",
        panic.roots,
        panic.reachable,
        panic.sources,
        panic.baselined,
        locks.locking_fns,
        locks.ordered_pairs,
        locks.inversions,
        proto.message_variants,
        proto.kind_variants,
        proto.violations,
        metrics.registered,
        metrics.asserted,
        metrics.documented,
        metrics.violations,
    );
    for (i, s) in stale.iter().enumerate() {
        let sep = if i == 0 { "" } else { ", " };
        let _ = write!(out, "{sep}\"{}\"", json_escape(s));
    }
    out.push_str("]},\n  \"findings\": [");
    for (i, f) in findings.iter().enumerate() {
        let sep = if i == 0 { "" } else { "," };
        let _ = write!(
            out,
            "{sep}\n    {{\"rule\": \"{}\", \"file\": \"{}\", \"line\": {}, \"message\": \"{}\"}}",
            f.rule,
            json_escape(&f.file.display().to_string()),
            f.line,
            json_escape(&f.message)
        );
    }
    if findings.is_empty() {
        out.push_str("]\n}\n");
    } else {
        out.push_str("\n  ]\n}\n");
    }
    out
}
