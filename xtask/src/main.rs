//! Workspace automation (`cargo xtask <command>`).
//!
//! Two commands:
//!
//! * `lint` — the token-level policy pass described in [`lint`];
//! * `analyze` — the AST/call-graph semantic analyzer described in
//!   [`analyze`] (panic reachability, lock ordering, protocol
//!   exhaustiveness, metric-name drift), which also writes a
//!   machine-readable report to `target/analyze-report.json`.
//!
//! Both exit non-zero and print `file:line: [rule] message` diagnostics
//! when a gate fails.

use std::path::{Path, PathBuf};
use std::process::ExitCode;
use xtask::{analyze, lint};

const USAGE: &str = "usage: cargo xtask <lint|analyze> [--root PATH] \
                     [--report PATH] [--write-baseline]";

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let Some(cmd) = args.next() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let mut root = workspace_root();
    let mut report_path: Option<PathBuf> = None;
    let mut write_baseline = false;
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--root" => {
                let Some(path) = args.next() else {
                    eprintln!("--root requires a path");
                    return ExitCode::FAILURE;
                };
                root = PathBuf::from(path);
            }
            "--report" => {
                let Some(path) = args.next() else {
                    eprintln!("--report requires a path");
                    return ExitCode::FAILURE;
                };
                report_path = Some(PathBuf::from(path));
            }
            "--write-baseline" => write_baseline = true,
            other => {
                eprintln!("unknown flag: {other}\n{USAGE}");
                return ExitCode::FAILURE;
            }
        }
    }
    match cmd.as_str() {
        "lint" => run_lint(&root),
        "analyze" => {
            let report = report_path.unwrap_or_else(|| root.join("target/analyze-report.json"));
            run_analyze(&root, &report, write_baseline)
        }
        other => {
            eprintln!("unknown command: {other}\n{USAGE}");
            ExitCode::FAILURE
        }
    }
}

fn run_lint(root: &Path) -> ExitCode {
    let findings = match lint::lint_workspace(root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!(
                "xtask lint: cannot read workspace at {}: {e}",
                root.display()
            );
            return ExitCode::FAILURE;
        }
    };
    let files = lint::count_linted_files(root).unwrap_or(0);
    if findings.is_empty() {
        println!("xtask lint: {files} files checked, no policy violations");
        ExitCode::SUCCESS
    } else {
        for f in &findings {
            println!("{f}");
        }
        println!(
            "xtask lint: {} violation(s) across {files} files checked",
            findings.len()
        );
        ExitCode::FAILURE
    }
}

fn run_analyze(root: &Path, report_path: &Path, write_baseline: bool) -> ExitCode {
    let analysis = match analyze::analyze_workspace(root) {
        Ok(a) => a,
        Err(e) => {
            eprintln!(
                "xtask analyze: cannot read workspace at {}: {e}",
                root.display()
            );
            return ExitCode::FAILURE;
        }
    };
    if write_baseline {
        let path = root.join("xtask/analyze-baseline.txt");
        let mut text = String::from(
            "# Panic-path ratchet baseline for `cargo xtask analyze`.\n\
             # One `file<TAB>function<TAB>kind` key per line; regenerate with\n\
             # `cargo xtask analyze --write-baseline` and review the diff —\n\
             # the baseline may only shrink.\n",
        );
        for key in &analysis.panic_keys {
            text.push_str(key);
            text.push('\n');
        }
        if let Err(e) = std::fs::write(&path, text) {
            eprintln!("xtask analyze: cannot write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        println!(
            "xtask analyze: wrote {} baseline entries to {}",
            analysis.panic_keys.len(),
            path.display()
        );
    }
    if let Some(dir) = report_path.parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    if let Err(e) = std::fs::write(report_path, &analysis.report) {
        eprintln!(
            "xtask analyze: cannot write report {}: {e}",
            report_path.display()
        );
        return ExitCode::FAILURE;
    }
    for stale in &analysis.stale_baseline {
        println!(
            "xtask analyze: note: stale baseline entry (safe to delete): {}",
            stale.replace('\t', " ")
        );
    }
    if analysis.findings.is_empty() {
        println!(
            "xtask analyze: {} files, {} functions, no violations (report: {})",
            analysis.files,
            analysis.fns,
            report_path.display()
        );
        ExitCode::SUCCESS
    } else {
        for f in &analysis.findings {
            println!("{f}");
        }
        println!(
            "xtask analyze: {} violation(s) across {} files ({} functions; report: {})",
            analysis.findings.len(),
            analysis.files,
            analysis.fns,
            report_path.display()
        );
        ExitCode::FAILURE
    }
}

/// The workspace root: `$CARGO_MANIFEST_DIR/..` when run via cargo,
/// the current directory otherwise.
fn workspace_root() -> PathBuf {
    std::env::var_os("CARGO_MANIFEST_DIR").map_or_else(
        || PathBuf::from("."),
        |d| {
            let d = PathBuf::from(d);
            d.parent().map(PathBuf::from).unwrap_or(d)
        },
    )
}
