//! Workspace automation (`cargo xtask <command>`).
//!
//! Currently one command: `lint`, the custom policy pass described in
//! [`lint`]. Run it as `cargo xtask lint`; it exits non-zero and prints
//! `file:line: [rule] message` diagnostics when a policy is violated.

mod lexer;
mod lint;

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let Some(cmd) = args.next() else {
        eprintln!("usage: cargo xtask lint [--root PATH]");
        return ExitCode::FAILURE;
    };
    match cmd.as_str() {
        "lint" => {
            let mut root = workspace_root();
            let mut rest = args;
            while let Some(flag) = rest.next() {
                match flag.as_str() {
                    "--root" => {
                        let Some(path) = rest.next() else {
                            eprintln!("--root requires a path");
                            return ExitCode::FAILURE;
                        };
                        root = PathBuf::from(path);
                    }
                    other => {
                        eprintln!("unknown flag: {other}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            run_lint(&root)
        }
        other => {
            eprintln!("unknown command: {other}\nusage: cargo xtask lint [--root PATH]");
            ExitCode::FAILURE
        }
    }
}

fn run_lint(root: &std::path::Path) -> ExitCode {
    let findings = match lint::lint_workspace(root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!(
                "xtask lint: cannot read workspace at {}: {e}",
                root.display()
            );
            return ExitCode::FAILURE;
        }
    };
    let files = lint::count_linted_files(root).unwrap_or(0);
    if findings.is_empty() {
        println!("xtask lint: {files} files checked, no policy violations");
        ExitCode::SUCCESS
    } else {
        for f in &findings {
            println!("{f}");
        }
        println!(
            "xtask lint: {} violation(s) across {files} files checked",
            findings.len()
        );
        ExitCode::FAILURE
    }
}

/// The workspace root: `$CARGO_MANIFEST_DIR/..` when run via cargo,
/// the current directory otherwise.
fn workspace_root() -> PathBuf {
    std::env::var_os("CARGO_MANIFEST_DIR").map_or_else(
        || PathBuf::from("."),
        |d| {
            let d = PathBuf::from(d);
            d.parent().map(PathBuf::from).unwrap_or(d)
        },
    )
}
