//! Workspace automation library backing the `cargo xtask` binary.
//!
//! Two gates:
//!
//! * [`lint`] — the token-level policy pass;
//! * [`analyze`] — the AST/call-graph semantic analyzer (panic
//!   reachability, lock ordering, protocol exhaustiveness, metric-name
//!   drift).
//!
//! The pipeline underneath `analyze` is [`lexer`] → [`parser`] →
//! [`ast`] → [`callgraph`]; it is exposed as a library so the fixture
//! and property tests in `xtask/tests/` can drive each stage directly.

pub mod analyze;
pub mod ast;
pub mod callgraph;
pub mod lexer;
pub mod lint;
pub mod parser;
