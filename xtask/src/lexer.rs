//! A minimal Rust lexer for the lint pass.
//!
//! The container image is offline, so `syn` is unavailable; the lint
//! pass instead works on a token stream produced here. The lexer's only
//! obligations are the ones the lint rules depend on:
//!
//! * comments (line, doc, nested block) are stripped — so `unwrap()`
//!   inside a doc example is never flagged — but their text is scanned
//!   for `xtask: allow(<rule>)` suppression markers;
//! * string/char/byte/raw-string literals are opaque `Lit` tokens, so
//!   a log message mentioning "unwrap" cannot trip a rule;
//! * lifetimes (`'a`) are distinguished from char literals (`'a'`);
//! * every token carries its 1-based source line for diagnostics.
//!
//! Everything else (numeric suffixes, multi-character operators) is
//! deliberately loose: rules match on identifier/punct sequences, e.g.
//! `.` `unwrap` `(`, which is robust to formatting but not to macro
//! tricks — an acceptable trade for an offline, dependency-free pass.

/// One lexed token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// An identifier or keyword.
    Ident(String),
    /// A single punctuation character (`::` is two `Punct(':')`).
    Punct(char),
    /// A lifetime such as `'a` (name not retained).
    Lifetime,
    /// Any literal: string, raw string, char, byte, number. Carries the
    /// literal's content — the inner text for (raw) strings, the source
    /// text for numbers — so passes that inspect string payloads (the
    /// metric-name drift check) can read it; rules that must *ignore*
    /// literal content simply never match on `Lit`.
    Lit(String),
}

/// A token plus its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// The token itself.
    pub tok: Tok,
    /// 1-based line the token starts on.
    pub line: u32,
}

/// The result of lexing one file.
#[derive(Debug, Default)]
pub struct Lexed {
    /// The significant tokens, in order.
    pub tokens: Vec<Token>,
    /// `(rule, line)` pairs from `xtask: allow(rule)` comment markers.
    /// A marker suppresses findings of `rule` on its own line and the
    /// line directly below it (so it can sit above the flagged code).
    pub allows: Vec<(String, u32)>,
}

impl Lexed {
    /// Whether a finding of `rule` on `line` is suppressed by a marker.
    pub fn allowed(&self, rule: &str, line: u32) -> bool {
        self.allows
            .iter()
            .any(|(r, l)| r == rule && (*l == line || l + 1 == line))
    }
}

/// Lexes Rust source text.
pub fn lex(src: &str) -> Lexed {
    let bytes: Vec<char> = src.chars().collect();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line = 1u32;
    while i < bytes.len() {
        let c = bytes[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '/' if bytes.get(i + 1) == Some(&'/') => {
                let start = i + 2;
                while i < bytes.len() && bytes[i] != '\n' {
                    i += 1;
                }
                let text: String = bytes[start..i].iter().collect();
                scan_allows(&text, line, &mut out.allows);
            }
            '/' if bytes.get(i + 1) == Some(&'*') => {
                let start_line = line;
                let mut depth = 1usize;
                let start = i + 2;
                i += 2;
                while i < bytes.len() && depth > 0 {
                    if bytes[i] == '\n' {
                        line += 1;
                    }
                    if bytes[i] == '/' && bytes.get(i + 1) == Some(&'*') {
                        depth += 1;
                        i += 2;
                    } else if bytes[i] == '*' && bytes.get(i + 1) == Some(&'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                let end = i.saturating_sub(2).max(start);
                let text: String = bytes[start..end].iter().collect();
                scan_allows(&text, start_line, &mut out.allows);
            }
            '"' => {
                let start_line = line;
                let start = i + 1;
                i = skip_string(&bytes, i, &mut line);
                let end = i.saturating_sub(1).max(start);
                out.tokens.push(Token {
                    tok: Tok::Lit(bytes[start..end].iter().collect()),
                    line: start_line,
                });
            }
            '\'' => {
                // Lifetime vs char literal.
                let next = bytes.get(i + 1).copied();
                let after = bytes.get(i + 2).copied();
                if next == Some('\\') {
                    // '\n', '\u{..}', '\'': scan to the closing quote.
                    out.tokens.push(Token {
                        tok: Tok::Lit(String::new()),
                        line,
                    });
                    i += 2; // consume ' and backslash
                    while i < bytes.len() && bytes[i] != '\'' {
                        if bytes[i] == '\n' {
                            line += 1;
                        }
                        i += 1;
                    }
                    i += 1;
                } else if after == Some('\'') {
                    // 'x'
                    out.tokens.push(Token {
                        tok: Tok::Lit(bytes[i + 1].to_string()),
                        line,
                    });
                    i += 3;
                } else if next.is_some_and(|c| c.is_alphanumeric() || c == '_') {
                    // 'a lifetime (or 'static): no closing quote.
                    out.tokens.push(Token {
                        tok: Tok::Lifetime,
                        line,
                    });
                    i += 2;
                    while i < bytes.len() && (bytes[i].is_alphanumeric() || bytes[i] == '_') {
                        i += 1;
                    }
                } else {
                    out.tokens.push(Token {
                        tok: Tok::Punct('\''),
                        line,
                    });
                    i += 1;
                }
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < bytes.len()
                    && (bytes[i].is_ascii_alphanumeric() || bytes[i] == '_' || bytes[i] == '.')
                {
                    // Stop `1..=2` from eating the range operator.
                    if bytes[i] == '.' && bytes.get(i + 1) == Some(&'.') {
                        break;
                    }
                    i += 1;
                }
                out.tokens.push(Token {
                    tok: Tok::Lit(bytes[start..i].iter().collect()),
                    line,
                });
            }
            c if c.is_alphanumeric() || c == '_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_alphanumeric() || bytes[i] == '_') {
                    i += 1;
                }
                let word: String = bytes[start..i].iter().collect();
                // r"...", r#"..."#, b"...", br#"..."# are literals.
                if matches!(word.as_str(), "r" | "b" | "br" | "rb")
                    && matches!(bytes.get(i), Some('"') | Some('#'))
                    && looks_like_raw_string(&bytes, i)
                {
                    let start_line = line;
                    let mut hashes = 0usize;
                    while bytes.get(i + hashes) == Some(&'#') {
                        hashes += 1;
                    }
                    let start = i + hashes + 1;
                    i = skip_raw_string(&bytes, i, &mut line);
                    let end = i.saturating_sub(hashes + 1).max(start);
                    out.tokens.push(Token {
                        tok: Tok::Lit(bytes[start..end.min(bytes.len())].iter().collect()),
                        line: start_line,
                    });
                } else {
                    out.tokens.push(Token {
                        tok: Tok::Ident(word),
                        line,
                    });
                }
            }
            c => {
                out.tokens.push(Token {
                    tok: Tok::Punct(c),
                    line,
                });
                i += 1;
            }
        }
    }
    out
}

/// After `r`/`b`/`br`, is this actually `#*"` or `"` (a raw/byte
/// string) rather than, say, `r#raw_ident`?
fn looks_like_raw_string(bytes: &[char], mut i: usize) -> bool {
    while bytes.get(i) == Some(&'#') {
        i += 1;
    }
    bytes.get(i) == Some(&'"')
}

/// Skips a `"..."` string starting at the opening quote; returns the
/// index just past the closing quote.
fn skip_string(bytes: &[char], mut i: usize, line: &mut u32) -> usize {
    i += 1;
    while i < bytes.len() {
        match bytes[i] {
            '\\' => i += 2,
            '"' => return i + 1,
            c => {
                if c == '\n' {
                    *line += 1;
                }
                i += 1;
            }
        }
    }
    i
}

/// Skips `#*"..."#*` starting at the first `#` or `"`; returns the
/// index just past the closing delimiter.
fn skip_raw_string(bytes: &[char], mut i: usize, line: &mut u32) -> usize {
    let mut hashes = 0usize;
    while bytes.get(i) == Some(&'#') {
        hashes += 1;
        i += 1;
    }
    i += 1; // opening quote
    while i < bytes.len() {
        if bytes[i] == '\n' {
            *line += 1;
        }
        if bytes[i] == '"' {
            let mut j = 0;
            while j < hashes && bytes.get(i + 1 + j) == Some(&'#') {
                j += 1;
            }
            if j == hashes {
                return i + 1 + hashes;
            }
        }
        i += 1;
    }
    i
}

/// Records every `xtask: allow(rule)` marker in a comment's text.
fn scan_allows(text: &str, line: u32, allows: &mut Vec<(String, u32)>) {
    let mut rest = text;
    while let Some(pos) = rest.find("xtask: allow(") {
        let tail = &rest[pos + "xtask: allow(".len()..];
        if let Some(end) = tail.find(')') {
            allows.push((tail[..end].trim().to_owned(), line));
            rest = &tail[end..];
        } else {
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter_map(|t| match t.tok {
                Tok::Ident(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn comments_are_stripped() {
        let src = "// x.unwrap()\n/* y.unwrap() */ fn main() {}\n/// doc unwrap()\nlet a = 1;";
        let ids = idents(src);
        assert!(!ids.contains(&"unwrap".to_owned()), "{ids:?}");
        assert!(ids.contains(&"main".to_owned()));
    }

    #[test]
    fn nested_block_comments() {
        let ids = idents("/* a /* b */ c.unwrap() */ keep");
        assert_eq!(ids, vec!["keep"]);
    }

    #[test]
    fn strings_are_opaque() {
        let ids = idents(r##"let s = "x.unwrap()"; let r = r#"unwrap"#; done"##);
        assert!(!ids.contains(&"unwrap".to_owned()), "{ids:?}");
        assert!(ids.contains(&"done".to_owned()));
    }

    #[test]
    fn lifetimes_do_not_swallow_code() {
        let ids = idents("fn f<'a>(x: &'a str) { x.unwrap() }");
        assert!(ids.contains(&"unwrap".to_owned()));
    }

    #[test]
    fn char_literals_are_literals() {
        let lexed = lex("let c = 'x'; let n = '\\n';");
        let lits = lexed
            .tokens
            .iter()
            .filter(|t| matches!(t.tok, Tok::Lit(_)))
            .count();
        assert_eq!(lits, 2);
    }

    #[test]
    fn string_literals_carry_their_content() {
        let lexed = lex(r##"let a = "xdn_messages_total"; let b = r#"raw body"#; let n = 42u8;"##);
        let lits: Vec<&str> = lexed
            .tokens
            .iter()
            .filter_map(|t| match &t.tok {
                Tok::Lit(s) => Some(s.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(lits, vec!["xdn_messages_total", "raw body", "42u8"]);
    }

    #[test]
    fn lines_are_tracked() {
        let lexed = lex("a\nb\n  c");
        let lines: Vec<u32> = lexed.tokens.iter().map(|t| t.line).collect();
        assert_eq!(lines, vec![1, 2, 3]);
    }

    #[test]
    fn allow_markers_are_collected() {
        let lexed = lex("// xtask: allow(sleep) bounded poll\nfoo();\n// xtask: allow(unwrap)\n");
        assert_eq!(
            lexed.allows,
            vec![("sleep".to_owned(), 1), ("unwrap".to_owned(), 3)]
        );
        assert!(lexed.allowed("sleep", 1));
        assert!(lexed.allowed("sleep", 2));
        assert!(!lexed.allowed("sleep", 3));
    }
}
