//! Workspace symbol table and call graph over the parsed AST.
//!
//! Resolution is name-based (there is no type information):
//!
//! * `self.m(..)` resolves inside the enclosing impl's type first —
//!   every `impl Broker` block in the workspace counts — then falls
//!   back to any method named `m`;
//! * `recv.m(..)` resolves to any workspace *method* named `m`, except
//!   a deny-list of names that overwhelmingly mean the standard
//!   library (`get`, `push`, `iter`, `lock`, …) — resolving those
//!   would wire `HashMap::get` calls to unrelated workspace methods;
//! * `Type::m(..)` / `Self::m(..)` resolves against the named owner,
//!   falling back to free functions for module paths (`wire::encode`);
//! * bare `m(..)` resolves to free functions named `m`.
//!
//! Unresolved calls are treated as leaves (std does not panic on the
//! paths we model; where it can — indexing, `unwrap` — the *caller*
//! carries the panic op, which the panic pass sees directly). The
//! graph therefore over-approximates within the workspace and
//! under-approximates across the std boundary, which is the right
//! polarity for a ratcheted gate.

use crate::ast::{FnDef, Op, ParsedFile};
use std::collections::HashMap;

/// Method names never resolved for a non-`self` receiver: these are
/// std-container/iterator vocabulary, and wiring them to same-named
/// workspace methods manufactures call edges that do not exist.
const DENY_METHODS: &[&str] = &[
    "get",
    "get_mut",
    "insert",
    "remove",
    "push",
    "pop",
    "len",
    "is_empty",
    "iter",
    "iter_mut",
    "into_iter",
    "next",
    "clone",
    "contains",
    "contains_key",
    "entry",
    "or_default",
    "or_insert",
    "or_insert_with",
    "take",
    "drain",
    "extend",
    "clear",
    "keys",
    "values",
    "first",
    "last",
    "sort",
    "sort_by",
    "sort_by_key",
    "sort_unstable",
    "retain",
    "split_off",
    "append",
    "as_ref",
    "as_mut",
    "as_str",
    "as_bytes",
    "as_slice",
    "to_owned",
    "to_string",
    "to_vec",
    "fmt",
    "eq",
    "ne",
    "cmp",
    "partial_cmp",
    "hash",
    "default",
    "from",
    "into",
    "try_into",
    "try_from",
    "map",
    "and_then",
    "unwrap_or",
    "unwrap_or_else",
    "unwrap_or_default",
    "ok",
    "err",
    "ok_or",
    "ok_or_else",
    "collect",
    "filter",
    "filter_map",
    "flat_map",
    "fold",
    "enumerate",
    "rev",
    "zip",
    "chain",
    "skip",
    "step_by",
    "any",
    "all",
    "find",
    "position",
    "count",
    "sum",
    "min",
    "max",
    "parse",
    "trim",
    "starts_with",
    "ends_with",
    "replace",
    "split",
    "chars",
    "bytes",
    "elapsed",
    "lock",
    "try_lock",
    "read",
    "write",
    "flush",
    "borrow",
    "borrow_mut",
    "copied",
    "cloned",
    "is_some",
    "is_none",
    "is_ok",
    "is_err",
    "join",
    "abs",
    "floor",
    "ceil",
    "front",
    "back",
    "push_back",
    "push_front",
    "pop_front",
    "pop_back",
    "contains_char",
    "get_or_insert",
];

/// A call graph node id: index into [`Graph::nodes`].
pub type NodeId = usize;

/// One resolved call edge.
#[derive(Debug, Clone, Copy)]
pub struct Edge {
    /// Callee.
    pub to: NodeId,
    /// 1-based line of the call site in the caller's file.
    pub line: u32,
}

/// The workspace call graph.
pub struct Graph<'a> {
    /// All parsed files, in analysis order.
    pub files: &'a [ParsedFile],
    /// `(file index, fn index)` per node.
    pub nodes: Vec<(usize, usize)>,
    /// Outgoing edges per node (deduplicated per callee).
    pub edges: Vec<Vec<Edge>>,
    by_name: HashMap<&'a str, Vec<NodeId>>,
    by_owner: HashMap<(&'a str, &'a str), Vec<NodeId>>,
    free_by_name: HashMap<&'a str, Vec<NodeId>>,
}

impl<'a> Graph<'a> {
    /// Builds the symbol table and resolves every call op.
    pub fn build(files: &'a [ParsedFile]) -> Graph<'a> {
        let mut nodes = Vec::new();
        let mut by_name: HashMap<&str, Vec<NodeId>> = HashMap::new();
        let mut by_owner: HashMap<(&str, &str), Vec<NodeId>> = HashMap::new();
        let mut free_by_name: HashMap<&str, Vec<NodeId>> = HashMap::new();
        for (fi, file) in files.iter().enumerate() {
            for (di, def) in file.fns.iter().enumerate() {
                let id = nodes.len();
                nodes.push((fi, di));
                by_name.entry(def.name.as_str()).or_default().push(id);
                match &def.owner {
                    Some(o) => by_owner
                        .entry((o.as_str(), def.name.as_str()))
                        .or_default()
                        .push(id),
                    None => free_by_name.entry(def.name.as_str()).or_default().push(id),
                }
            }
        }
        let mut g = Graph {
            files,
            nodes,
            edges: Vec::new(),
            by_name,
            by_owner,
            free_by_name,
        };
        for id in 0..g.nodes.len() {
            let def = g.def(id);
            let mut out: Vec<Edge> = Vec::new();
            for op in &def.body {
                let line = op.line().unwrap_or(0);
                for to in g.resolve_call(id, op) {
                    if to != id && !out.iter().any(|e| e.to == to) {
                        out.push(Edge { to, line });
                    }
                }
            }
            g.edges.push(out);
        }
        g
    }

    /// The function definition behind a node.
    pub fn def(&self, id: NodeId) -> &'a FnDef {
        let (fi, di) = self.nodes[id];
        &self.files[fi].fns[di]
    }

    /// The file a node lives in.
    pub fn file(&self, id: NodeId) -> &'a ParsedFile {
        &self.files[self.nodes[id].0]
    }

    /// Resolves one call op from `caller` to workspace nodes. Non-call
    /// ops resolve to nothing.
    pub fn resolve_call(&self, caller: NodeId, op: &Op) -> Vec<NodeId> {
        let targets: Option<Vec<NodeId>> = match op {
            Op::MethodCall {
                name, recv_self, ..
            } => {
                let owner = self.def(caller).owner.as_deref();
                if *recv_self {
                    owner
                        .and_then(|o| self.by_owner.get(&(o, name.as_str())).cloned())
                        .or_else(|| {
                            if DENY_METHODS.contains(&name.as_str()) {
                                None
                            } else {
                                self.methods_named(name)
                            }
                        })
                } else if DENY_METHODS.contains(&name.as_str()) {
                    None
                } else {
                    self.methods_named(name)
                }
            }
            Op::PathCall {
                qualifier, name, ..
            } => match qualifier.as_deref() {
                Some("Self") | Some("self") => {
                    let owner = self.def(caller).owner.as_deref();
                    owner.and_then(|o| self.by_owner.get(&(o, name.as_str())).cloned())
                }
                Some(q) => self
                    .by_owner
                    .get(&(q, name.as_str()))
                    .cloned()
                    .or_else(|| self.free_by_name.get(name.as_str()).cloned()),
                None => self.free_by_name.get(name.as_str()).cloned(),
            },
            Op::BareCall { name, .. } => self.free_by_name.get(name.as_str()).cloned(),
            _ => None,
        };
        // Test-only functions are not part of the production graph.
        targets
            .unwrap_or_default()
            .into_iter()
            .filter(|&t| !self.def(t).is_test)
            .collect()
    }

    /// All non-test methods (owner present) with the given name.
    fn methods_named(&self, name: &str) -> Option<Vec<NodeId>> {
        self.by_name.get(name).map(|v| {
            v.iter()
                .copied()
                .filter(|&id| self.def(id).owner.is_some())
                .collect()
        })
    }

    /// Nodes matching `(owner_pattern, name_pattern)`, where the owner
    /// pattern `*` matches any owner (including none) and a trailing
    /// `*` on the name pattern matches any suffix. Test fns excluded.
    pub fn matching(&self, owner_pattern: &str, name_pattern: &str) -> Vec<NodeId> {
        (0..self.nodes.len())
            .filter(|&id| {
                let def = self.def(id);
                if def.is_test {
                    return false;
                }
                let owner_ok = owner_pattern == "*" || def.owner.as_deref() == Some(owner_pattern);
                let name_ok = match name_pattern.strip_suffix('*') {
                    Some(prefix) => def.name.starts_with(prefix),
                    None => def.name == name_pattern,
                };
                owner_ok && name_ok
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_file;
    use std::path::PathBuf;

    fn graph_of(srcs: &[(&str, &str)]) -> (Vec<ParsedFile>, Vec<(String, Vec<String>)>) {
        let files: Vec<ParsedFile> = srcs
            .iter()
            .map(|(p, s)| parse_file(PathBuf::from(p), s))
            .collect();
        let g = Graph::build(&files);
        let view = (0..g.nodes.len())
            .map(|id| {
                let mut callees: Vec<String> = g.edges[id]
                    .iter()
                    .map(|e| g.def(e.to).qualified())
                    .collect();
                callees.sort();
                (g.def(id).qualified(), callees)
            })
            .collect();
        (files, view)
    }

    #[test]
    fn self_calls_resolve_within_owner_across_files() {
        let (_f, view) = graph_of(&[
            (
                "a.rs",
                "impl Broker { fn handle(&mut self) { self.dispatch(); } }",
            ),
            ("b.rs", "impl Broker { fn dispatch(&mut self) {} }"),
            ("c.rs", "impl Other { fn dispatch(&mut self) {} }"),
        ]);
        let broker_handle = view.iter().find(|(n, _)| n == "Broker::handle").unwrap();
        assert_eq!(broker_handle.1, vec!["Broker::dispatch"]);
    }

    #[test]
    fn denied_std_names_do_not_resolve() {
        let (_f, view) = graph_of(&[(
            "a.rs",
            "impl Counters { fn get(&self) {} }\n\
             impl User { fn run(&self, m: Map) { m.get(1); } }",
        )]);
        let run = view.iter().find(|(n, _)| n == "User::run").unwrap();
        assert!(run.1.is_empty(), "{:?}", run.1);
    }

    #[test]
    fn method_path_and_free_calls_resolve() {
        let (_f, view) = graph_of(&[(
            "a.rs",
            "fn helper() {}\n\
             impl Window { fn observe(&mut self) {} }\n\
             impl Broker { fn go(&mut self, w: &mut Window) { \
                 w.observe(); Window::observe(w); helper(); } }",
        )]);
        let go = view.iter().find(|(n, _)| n == "Broker::go").unwrap();
        assert_eq!(go.1, vec!["Window::observe", "helper"]);
    }

    #[test]
    fn test_fns_stay_out_of_the_graph() {
        let (_f, view) = graph_of(&[(
            "a.rs",
            "impl B { fn hot(&self) { self.helper(); } }\n\
             #[cfg(test)] mod tests { impl B { fn helper(&self) {} } }",
        )]);
        let hot = view.iter().find(|(n, _)| n == "B::hot").unwrap();
        assert!(hot.1.is_empty(), "{:?}", hot.1);
    }

    #[test]
    fn matching_supports_globs() {
        let files = vec![parse_file(
            PathBuf::from("a.rs"),
            "impl Broker { fn handle(&self) {} fn handle_batch(&self) {} fn other(&self) {} }",
        )];
        let g = Graph::build(&files);
        assert_eq!(g.matching("Broker", "handle*").len(), 2);
        assert_eq!(g.matching("*", "other").len(), 1);
        assert_eq!(g.matching("Nope", "handle*").len(), 0);
    }
}
