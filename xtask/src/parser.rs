//! Recursive-descent parser from [`crate::lexer`] tokens to the
//! [`crate::ast`] shape.
//!
//! Two layers:
//!
//! * an **item walker** that recognises `fn` / `impl` / `trait` /
//!   `enum` / `mod` / `const` / `static` items (tracking the owning
//!   `impl`/`trait` type and `#[cfg(test)]` regions) and skips
//!   everything else by balanced-delimiter scanning;
//! * a **body scanner** that turns a function body's tokens into the
//!   flat [`Op`] list, classifying `Enum::Variant` paths by pattern vs.
//!   expression position (match arms, `if let` / `while let` / plain
//!   `let` patterns, `for` patterns, and the second argument of
//!   `matches!`), and recording calls, indexing, string literals, and
//!   the block/statement structure the lock pass replays.
//!
//! The parser must never panic: every scan is bounds-checked and every
//! "find the matching delimiter" falls back to the region end on
//! malformed input (the proptest in `xtask/tests/parser_props.rs` feeds
//! it arbitrary soup).

use crate::ast::{ConstDef, EnumDef, FnDef, Op, ParsedFile};
use crate::lexer::{lex, Tok, Token};
use std::path::PathBuf;

/// Parses one file's source text.
pub fn parse_file(path: PathBuf, src: &str) -> ParsedFile {
    let lexed = lex(src);
    let mut out = ParsedFile {
        path,
        allows: lexed.allows.clone(),
        mentions_rwlock: lexed
            .tokens
            .iter()
            .any(|t| matches!(&t.tok, Tok::Ident(w) if w == "RwLock")),
        ..ParsedFile::default()
    };
    let mut p = Parser { t: &lexed.tokens };
    p.items(0, lexed.tokens.len(), None, false, &mut out);
    out
}

/// Identifiers that introduce control flow rather than calls.
const KEYWORDS: &[&str] = &[
    "if", "else", "while", "for", "loop", "match", "return", "break", "continue", "in", "move",
    "as", "let", "mut", "ref", "fn", "impl", "pub", "use", "mod", "struct", "enum", "trait",
    "where", "unsafe", "async", "await", "dyn", "const", "static", "type", "crate", "super",
];

struct Parser<'a> {
    t: &'a [Token],
}

impl<'a> Parser<'a> {
    fn ident(&self, i: usize) -> Option<&'a str> {
        match self.t.get(i).map(|t| &t.tok) {
            Some(Tok::Ident(s)) => Some(s.as_str()),
            _ => None,
        }
    }

    fn punct(&self, i: usize) -> Option<char> {
        match self.t.get(i).map(|t| &t.tok) {
            Some(Tok::Punct(c)) => Some(*c),
            _ => None,
        }
    }

    fn line(&self, i: usize) -> u32 {
        self.t.get(i).map_or(0, |t| t.line)
    }

    /// Index just past the delimiter that closes `open` (which must sit
    /// on `(`, `[`, or `{`). Counts only the same delimiter kind —
    /// valid Rust nests delimiters properly, so this is exact; on
    /// malformed input it degrades to `end`.
    fn close_of(&self, open: usize, end: usize) -> usize {
        let (o, c) = match self.punct(open) {
            Some('(') => ('(', ')'),
            Some('[') => ('[', ']'),
            Some('{') => ('{', '}'),
            _ => return (open + 1).min(end),
        };
        let mut depth = 0i64;
        let mut i = open;
        while i < end {
            match self.punct(i) {
                Some(x) if x == o => depth += 1,
                Some(x) if x == c => {
                    depth -= 1;
                    if depth == 0 {
                        return i + 1;
                    }
                }
                _ => {}
            }
            i += 1;
        }
        end
    }

    /// First index in `[i, end)` where `what` holds at combined
    /// paren/bracket/brace depth 0 (relative to `i`).
    fn find_at_depth0(
        &self,
        mut i: usize,
        end: usize,
        what: impl Fn(&Parser<'a>, usize) -> bool,
    ) -> Option<usize> {
        let mut depth = 0i64;
        while i < end {
            // Closers drop the depth *before* the predicate runs and
            // openers raise it *after*, so the predicate can match an
            // opening delimiter sitting at depth 0.
            if matches!(self.punct(i), Some(')') | Some(']') | Some('}')) {
                depth -= 1;
            }
            if depth <= 0 && what(self, i) {
                return Some(i);
            }
            if matches!(self.punct(i), Some('(') | Some('[') | Some('{')) {
                depth += 1;
            }
            i += 1;
        }
        None
    }

    /// Walks items in `[i, end)`, appending into `out`.
    fn items(
        &mut self,
        mut i: usize,
        end: usize,
        owner: Option<&str>,
        in_test: bool,
        out: &mut ParsedFile,
    ) {
        // Test-ness accumulated from attributes since the last item.
        let mut attr_test = false;
        while i < end {
            // Attributes: `#` `!`? `[ ... ]`.
            if self.punct(i) == Some('#') {
                let mut j = i + 1;
                if self.punct(j) == Some('!') {
                    j += 1;
                }
                if self.punct(j) == Some('[') {
                    let close = self.close_of(j, end);
                    for k in j..close {
                        if self.ident(k) == Some("test") {
                            attr_test = true;
                        }
                    }
                    i = close;
                    continue;
                }
                i += 1;
                continue;
            }
            match self.ident(i) {
                // Modifiers that precede an item keyword.
                Some("pub") => {
                    i += 1;
                    if self.punct(i) == Some('(') {
                        i = self.close_of(i, end);
                    }
                }
                Some("unsafe") | Some("async") | Some("extern") | Some("default") => i += 1,
                Some("fn") => {
                    let name = self.ident(i + 1).unwrap_or("?").to_owned();
                    let line = self.line(i);
                    // Body opens at the first `{` outside any paren or
                    // bracket (generics/where clauses carry no braces);
                    // a `;` first means a bodiless trait method.
                    let stop = self.find_at_depth0(i + 2, end, |p, k| {
                        p.punct(k) == Some('{') || p.punct(k) == Some(';')
                    });
                    match stop {
                        Some(open) if self.punct(open) == Some('{') => {
                            let close = self.close_of(open, end);
                            let mut body = Vec::new();
                            let mut s = Scanner {
                                p: self,
                                ops: &mut body,
                            };
                            s.expr_region(open + 1, close.saturating_sub(1));
                            out.fns.push(FnDef {
                                name,
                                owner: owner.map(str::to_owned),
                                line,
                                is_test: in_test || attr_test,
                                body,
                            });
                            i = close;
                        }
                        Some(semi) => i = semi + 1,
                        None => i = end,
                    }
                    attr_test = false;
                }
                Some("const") | Some("static") if self.ident(i + 1) != Some("fn") => {
                    // `const NAME: Type = expr;` — also `static mut`.
                    let mut j = i + 1;
                    if self.ident(j) == Some("mut") {
                        j += 1;
                    }
                    let name = self.ident(j).unwrap_or("?").to_owned();
                    let line = self.line(i);
                    let stop = self.find_at_depth0(j, end, |p, k| {
                        (p.punct(k) == Some('=') && p.punct(k + 1) != Some('='))
                            || p.punct(k) == Some(';')
                    });
                    match stop {
                        Some(eq) if self.punct(eq) == Some('=') => {
                            let semi = self
                                .find_at_depth0(eq + 1, end, |p, k| p.punct(k) == Some(';'))
                                .unwrap_or(end);
                            let mut body = Vec::new();
                            let mut s = Scanner {
                                p: self,
                                ops: &mut body,
                            };
                            s.expr_region(eq + 1, semi);
                            out.consts.push(ConstDef {
                                name,
                                owner: owner.map(str::to_owned),
                                line,
                                is_test: in_test || attr_test,
                                body,
                            });
                            i = semi + 1;
                        }
                        Some(semi) => i = semi + 1,
                        None => i = end,
                    }
                    attr_test = false;
                }
                Some("enum") => {
                    let name = self.ident(i + 1).unwrap_or("?").to_owned();
                    match self.find_at_depth0(i + 1, end, |p, k| p.punct(k) == Some('{')) {
                        Some(open) => {
                            let close = self.close_of(open, end);
                            out.enums.push(EnumDef {
                                name,
                                variants: self.enum_variants(open + 1, close.saturating_sub(1)),
                                is_test: in_test || attr_test,
                            });
                            i = close;
                        }
                        None => i = end,
                    }
                    attr_test = false;
                }
                Some("impl") => {
                    match self.find_at_depth0(i + 1, end, |p, k| p.punct(k) == Some('{')) {
                        Some(open) => {
                            let ty = self
                                .impl_type(i + 1, open)
                                .unwrap_or_else(|| "?".to_owned());
                            let close = self.close_of(open, end);
                            self.items(
                                open + 1,
                                close.saturating_sub(1),
                                Some(&ty),
                                in_test || attr_test,
                                out,
                            );
                            i = close;
                        }
                        None => i = end,
                    }
                    attr_test = false;
                }
                Some("trait") => {
                    let name = self.ident(i + 1).unwrap_or("?").to_owned();
                    match self.find_at_depth0(i + 1, end, |p, k| p.punct(k) == Some('{')) {
                        Some(open) => {
                            let close = self.close_of(open, end);
                            self.items(
                                open + 1,
                                close.saturating_sub(1),
                                Some(&name),
                                in_test || attr_test,
                                out,
                            );
                            i = close;
                        }
                        None => i = end,
                    }
                    attr_test = false;
                }
                Some("mod") => {
                    let stop = self.find_at_depth0(i + 1, end, |p, k| {
                        p.punct(k) == Some('{') || p.punct(k) == Some(';')
                    });
                    match stop {
                        Some(open) if self.punct(open) == Some('{') => {
                            let close = self.close_of(open, end);
                            self.items(
                                open + 1,
                                close.saturating_sub(1),
                                owner,
                                in_test || attr_test,
                                out,
                            );
                            i = close;
                        }
                        Some(semi) => i = semi + 1,
                        None => i = end,
                    }
                    attr_test = false;
                }
                Some("struct") | Some("union") | Some("use") | Some("type") => {
                    // Runs to `;` or to a balanced `{}` block.
                    let stop = self.find_at_depth0(i + 1, end, |p, k| {
                        p.punct(k) == Some('{') || p.punct(k) == Some(';')
                    });
                    match stop {
                        Some(open) if self.punct(open) == Some('{') => {
                            i = self.close_of(open, end);
                        }
                        Some(semi) => i = semi + 1,
                        None => i = end,
                    }
                    attr_test = false;
                }
                Some("macro_rules") => {
                    match self.find_at_depth0(i + 1, end, |p, k| p.punct(k) == Some('{')) {
                        Some(open) => i = self.close_of(open, end),
                        None => i = end,
                    }
                    attr_test = false;
                }
                _ => i += 1,
            }
        }
    }

    /// The `Self` type of an `impl` header in `[i, open)`:
    /// `impl Trait for Type` → `Type`; `impl<G> Type<G>` → `Type`.
    fn impl_type(&self, mut i: usize, open: usize) -> Option<String> {
        // Skip the generic parameter list right after `impl`.
        if self.punct(i) == Some('<') {
            let mut depth = 0i64;
            while i < open {
                match self.punct(i) {
                    Some('<') => depth += 1,
                    Some('>') => {
                        depth -= 1;
                        if depth <= 0 {
                            i += 1;
                            break;
                        }
                    }
                    _ => {}
                }
                i += 1;
            }
        }
        // `for` at angle-depth 0 splits trait from type (`for<'a>` has
        // no idents before `{`, and closures cannot appear here).
        let mut depth = 0i64;
        let mut after_for = None;
        for k in i..open {
            match self.punct(k) {
                Some('<') => depth += 1,
                Some('>') => depth -= 1,
                _ => {}
            }
            if depth <= 0 && self.ident(k) == Some("for") {
                after_for = Some(k + 1);
                break;
            }
        }
        let from = after_for.unwrap_or(i);
        (from..open).find_map(|k| match self.ident(k) {
            Some(w) if !KEYWORDS.contains(&w) => Some(w.to_owned()),
            _ => None,
        })
    }

    /// Variant names at depth 0 of an enum body `[i, end)`.
    fn enum_variants(&self, mut i: usize, end: usize) -> Vec<(String, u32)> {
        let mut out = Vec::new();
        while i < end {
            // Skip attributes on variants.
            if self.punct(i) == Some('#') && self.punct(i + 1) == Some('[') {
                i = self.close_of(i + 1, end);
                continue;
            }
            match self.ident(i) {
                Some(name) => {
                    out.push((name.to_owned(), self.line(i)));
                    // Skip payload + discriminant to the `,` at depth 0.
                    i = self
                        .find_at_depth0(i + 1, end, |p, k| p.punct(k) == Some(','))
                        .map_or(end, |c| c + 1);
                }
                None => i += 1,
            }
        }
        out
    }
}

/// Body scanner: appends [`Op`]s for one expression region.
struct Scanner<'a, 'b> {
    p: &'b Parser<'a>,
    ops: &'b mut Vec<Op>,
}

impl<'a, 'b> Scanner<'a, 'b> {
    /// Scans `[i, end)` as expressions/statements.
    fn expr_region(&mut self, mut i: usize, end: usize) {
        // Combined paren+bracket depth, for `Semi`/`LetStart` scoping.
        let mut paren = 0u32;
        while i < end {
            let line = self.p.line(i);
            match &self.p.t[i].tok {
                Tok::Ident(w) => match w.as_str() {
                    "match" => {
                        match self
                            .p
                            .find_at_depth0(i + 1, end, |p, k| p.punct(k) == Some('{'))
                        {
                            Some(open) => {
                                self.expr_region(i + 1, open);
                                let close = self.p.close_of(open, end);
                                self.ops.push(Op::Open);
                                self.match_arms(open + 1, close.saturating_sub(1));
                                self.ops.push(Op::Close);
                                i = close;
                            }
                            None => i = end,
                        }
                    }
                    "let" => {
                        self.ops.push(Op::LetStart {
                            paren_depth: paren,
                            line,
                        });
                        let stop = self.p.find_at_depth0(i + 1, end, |p, k| {
                            (p.punct(k) == Some('=') && p.punct(k + 1) != Some('='))
                                || p.punct(k) == Some(';')
                        });
                        match stop {
                            Some(eq) => {
                                self.let_pattern(i + 1, eq);
                                // The initializer (or `;`) continues in
                                // the normal walk.
                                i = eq;
                                if self.p.punct(eq) == Some('=') {
                                    i = eq + 1;
                                }
                            }
                            None => i = end,
                        }
                    }
                    "for" => {
                        // `for PAT in expr { .. }` — the pattern span
                        // runs to `in`; a missing `in` before the block
                        // means this was not a for-loop header.
                        let block = self
                            .p
                            .find_at_depth0(i + 1, end, |p, k| p.punct(k) == Some('{'))
                            .unwrap_or(end);
                        match self
                            .p
                            .find_at_depth0(i + 1, block, |p, k| p.ident(k) == Some("in"))
                        {
                            Some(inn) => {
                                self.pattern_region(i + 1, inn);
                                i = inn + 1;
                            }
                            None => i += 1,
                        }
                    }
                    "matches" if self.p.punct(i + 1) == Some('!') => {
                        self.ops.push(Op::Macro {
                            name: "matches".to_owned(),
                            line,
                        });
                        if self.p.punct(i + 2) == Some('(') {
                            let close = self.p.close_of(i + 2, end);
                            let inner_end = close.saturating_sub(1);
                            match self
                                .p
                                .find_at_depth0(i + 3, inner_end, |p, k| p.punct(k) == Some(','))
                            {
                                Some(comma) => {
                                    self.expr_region(i + 3, comma);
                                    self.pattern_region(comma + 1, inner_end);
                                }
                                None => self.expr_region(i + 3, inner_end),
                            }
                            i = close;
                        } else {
                            i += 2;
                        }
                    }
                    _ => {
                        if self.p.punct(i + 1) == Some('!')
                            && matches!(self.p.punct(i + 2), Some('(') | Some('[') | Some('{'))
                        {
                            // Plain macro: contents scanned as exprs.
                            self.ops.push(Op::Macro {
                                name: w.clone(),
                                line,
                            });
                            i += 2;
                        } else {
                            self.ident_in_expr(i, w, paren, line);
                            i += 1;
                        }
                    }
                },
                Tok::Punct('#') if self.p.punct(i + 1) == Some('[') => {
                    // Statement attribute: skip entirely.
                    i = self.p.close_of(i + 1, end);
                }
                Tok::Punct('{') => {
                    self.ops.push(Op::Open);
                    i += 1;
                }
                Tok::Punct('}') => {
                    self.ops.push(Op::Close);
                    i += 1;
                }
                Tok::Punct(';') => {
                    if paren == 0 {
                        self.ops.push(Op::Semi);
                    }
                    i += 1;
                }
                Tok::Punct('(') => {
                    paren += 1;
                    i += 1;
                }
                Tok::Punct(')') => {
                    paren = paren.saturating_sub(1);
                    i += 1;
                }
                Tok::Punct('[') => {
                    if self.indexes(i) {
                        self.ops.push(Op::Index { line });
                    }
                    paren += 1;
                    i += 1;
                }
                Tok::Punct(']') => {
                    paren = paren.saturating_sub(1);
                    i += 1;
                }
                Tok::Lit(s) => {
                    // Strings vs numbers: the lexer does not tag them,
                    // but numeric literals always start with a digit.
                    if !s.is_empty() && !s.starts_with(|c: char| c.is_ascii_digit()) {
                        self.ops.push(Op::Str {
                            value: s.clone(),
                            line,
                        });
                    }
                    i += 1;
                }
                _ => i += 1,
            }
        }
    }

    /// An identifier met in expression position: classify calls and
    /// enum-path references.
    fn ident_in_expr(&mut self, i: usize, w: &str, paren: u32, line: u32) {
        if KEYWORDS.contains(&w) {
            return;
        }
        let upper = w.starts_with(|c: char| c.is_ascii_uppercase());
        // `Prev::w` with both segments capitalized and no further `::`
        // is an enum-variant reference in expression position.
        if upper && self.path_sep_before(i) && self.p.punct(i + 1) != Some(':') {
            if let Some(e) = self.p.ident(i.saturating_sub(3)) {
                if e.starts_with(|c: char| c.is_ascii_uppercase()) {
                    self.ops.push(Op::ExprVariant {
                        enumeration: e.to_owned(),
                        variant: w.to_owned(),
                        line,
                    });
                }
            }
        }
        if self.p.punct(i + 1) != Some('(') {
            return;
        }
        // A call. Which flavour?
        if self.p.punct(i.saturating_sub(1)) == Some('.') && i >= 1 {
            let recv = self.p.ident(i.saturating_sub(2));
            self.ops.push(Op::MethodCall {
                name: w.to_owned(),
                recv_self: recv == Some("self"),
                recv_last: recv.filter(|r| *r != "self").map(str::to_owned),
                paren_depth: paren,
                line,
            });
        } else if self.path_sep_before(i) {
            let qualifier = self
                .p
                .ident(i.saturating_sub(3))
                .filter(|q| !KEYWORDS.contains(q))
                .map(str::to_owned);
            self.ops.push(Op::PathCall {
                qualifier,
                name: w.to_owned(),
                arg_last: self.arg_last(i + 1),
                paren_depth: paren,
                line,
            });
        } else {
            self.ops.push(Op::BareCall {
                name: w.to_owned(),
                arg_last: self.arg_last(i + 1),
                paren_depth: paren,
                line,
            });
        }
    }

    /// Whether tokens `i-2, i-1` are `::`.
    fn path_sep_before(&self, i: usize) -> bool {
        i >= 2 && self.p.punct(i - 1) == Some(':') && self.p.punct(i - 2) == Some(':')
    }

    /// Last identifier inside the argument list opening at `open`.
    fn arg_last(&self, open: usize) -> Option<String> {
        let close = self.p.close_of(open, self.p.t.len());
        (open..close.saturating_sub(1))
            .rev()
            .find_map(|k| self.p.ident(k))
            .filter(|w| !KEYWORDS.contains(w))
            .map(str::to_owned)
    }

    /// Whether a `[` at `i` indexes/slices the preceding expression.
    fn indexes(&self, i: usize) -> bool {
        if i == 0 {
            return false;
        }
        match &self.p.t[i - 1].tok {
            Tok::Ident(w) => !KEYWORDS.contains(&w.as_str()),
            Tok::Lit(_) => true, // tuple-field chains: `self.0[i]`
            Tok::Punct(')') | Tok::Punct(']') => true,
            _ => false,
        }
    }

    /// Arms of a match body `[i, end)` (inside the braces).
    fn match_arms(&mut self, mut i: usize, end: usize) {
        while i < end {
            // Skip separators and arm attributes.
            match self.p.punct(i) {
                Some(',') | Some('|') => {
                    i += 1;
                    continue;
                }
                Some('#') if self.p.punct(i + 1) == Some('[') => {
                    i = self.p.close_of(i + 1, end);
                    continue;
                }
                _ => {}
            }
            // Pattern runs to `=>` at depth 0.
            let arrow = self.p.find_at_depth0(i, end, |p, k| {
                p.punct(k) == Some('=') && p.punct(k + 1) == Some('>')
            });
            let Some(arrow) = arrow else {
                // No arrow left: scan the tail as an expression so any
                // trailing tokens are not lost, then stop.
                self.expr_region(i, end);
                return;
            };
            self.pattern_region(i, arrow);
            // Arm body: a `{ .. }` block, or an expression up to the
            // `,` at depth 0 (or the match's end).
            let b = arrow + 2;
            if self.p.punct(b) == Some('{') {
                let close = self.p.close_of(b, end);
                self.ops.push(Op::Open);
                self.expr_region(b + 1, close.saturating_sub(1));
                self.ops.push(Op::Close);
                i = close;
            } else {
                let stop = self
                    .p
                    .find_at_depth0(b, end, |p, k| p.punct(k) == Some(','))
                    .unwrap_or(end);
                self.expr_region(b, stop);
                i = stop;
            }
        }
    }

    /// A pattern region: emits `PatVariant` for terminal
    /// `Enum::Variant` pairs; a top-level `if` switches the remainder
    /// (a match-arm or `matches!` guard) back to expression scanning.
    fn pattern_region(&mut self, mut i: usize, end: usize) {
        let mut depth = 0i64;
        while i < end {
            match self.p.punct(i) {
                Some('(') | Some('[') | Some('{') => depth += 1,
                Some(')') | Some(']') | Some('}') => depth -= 1,
                _ => {}
            }
            if depth <= 0 && self.p.ident(i) == Some("if") {
                self.expr_region(i + 1, end);
                return;
            }
            if let Some(w) = self.p.ident(i) {
                if w.starts_with(|c: char| c.is_ascii_uppercase())
                    && self.path_sep_before(i)
                    && self.p.punct(i + 1) != Some(':')
                {
                    if let Some(e) = self.p.ident(i.saturating_sub(3)) {
                        if e.starts_with(|c: char| c.is_ascii_uppercase()) {
                            self.ops.push(Op::PatVariant {
                                enumeration: e.to_owned(),
                                variant: w.to_owned(),
                                line: self.p.line(i),
                            });
                        }
                    }
                }
            }
            i += 1;
        }
    }

    /// A `let` pattern `[i, end)`: emits `Bind` when the pattern is a
    /// plain (possibly `mut`, possibly type-ascribed) identifier, and
    /// `PatVariant`s either way.
    fn let_pattern(&mut self, mut i: usize, end: usize) {
        if self.p.ident(i) == Some("mut") {
            i += 1;
        }
        if let Some(w) = self.p.ident(i) {
            let simple = i + 1 >= end
                || (self.p.punct(i + 1) == Some(':') && self.p.punct(i + 2) != Some(':'));
            if simple && !KEYWORDS.contains(&w) {
                self.ops.push(Op::Bind { name: w.to_owned() });
            }
        }
        self.pattern_region(i, end);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Op;

    fn parse(src: &str) -> ParsedFile {
        parse_file(PathBuf::from("test.rs"), src)
    }

    #[test]
    fn fns_and_owners() {
        let f = parse(
            "fn free() {}\n\
             impl Broker { fn handle(&mut self) {} }\n\
             impl<R: Router> PublicationRouter<H> for ShardedRouter<R> { fn route(&self) {} }\n\
             trait Link { fn provided(&self) { self.go(); } fn required(&self); }",
        );
        let names: Vec<String> = f.fns.iter().map(FnDef::qualified).collect();
        assert_eq!(
            names,
            vec![
                "free",
                "Broker::handle",
                "ShardedRouter::route",
                "Link::provided"
            ]
        );
        assert_eq!(f.fns[1].line, 2);
    }

    #[test]
    fn test_regions_are_flagged() {
        let f = parse(
            "fn prod() {}\n\
             #[cfg(test)] mod tests { fn helper() {} #[test] fn check() {} }\n\
             #[test] fn top() {}",
        );
        let flags: Vec<(String, bool)> =
            f.fns.iter().map(|d| (d.name.clone(), d.is_test)).collect();
        assert_eq!(
            flags,
            vec![
                ("prod".to_owned(), false),
                ("helper".to_owned(), true),
                ("check".to_owned(), true),
                ("top".to_owned(), true)
            ]
        );
    }

    #[test]
    fn calls_are_classified() {
        let f = parse(
            "fn f(&self) { self.go(); self.stats.lock(); wire::encode(&m); \
             DedupWindow::observe(x); helper(&self.addr); }",
        );
        let body = &f.fns[0].body;
        assert!(body.contains(&Op::MethodCall {
            name: "go".into(),
            recv_self: true,
            recv_last: None,
            paren_depth: 0,
            line: 1
        }));
        assert!(body.contains(&Op::MethodCall {
            name: "lock".into(),
            recv_self: false,
            recv_last: Some("stats".into()),
            paren_depth: 0,
            line: 1
        }));
        assert!(body.iter().any(|o| matches!(
            o,
            Op::PathCall { qualifier: Some(q), name, .. } if q == "wire" && name == "encode"
        )));
        assert!(body.iter().any(|o| matches!(
            o,
            Op::PathCall { qualifier: Some(q), name, .. }
                if q == "DedupWindow" && name == "observe"
        )));
        assert!(body.iter().any(|o| matches!(
            o,
            Op::BareCall { name, arg_last: Some(a), .. } if name == "helper" && a == "addr"
        )));
    }

    #[test]
    fn pattern_vs_expression_variants() {
        let f = parse(
            "fn f(m: Message) { match m { Message::Publish(p) => go(p), \
             Message::Ack { seq } if seq > 0 => {} _ => {} } \
             let out = Message::Heartbeat; \
             if let Message::Subscribe(s) = &m { use_it(s); } \
             let yes = matches!(m, Message::Sequenced { .. }); }",
        );
        let body = &f.fns[0].body;
        let pats: Vec<&str> = body
            .iter()
            .filter_map(|o| match o {
                Op::PatVariant { variant, .. } => Some(variant.as_str()),
                _ => None,
            })
            .collect();
        let exprs: Vec<&str> = body
            .iter()
            .filter_map(|o| match o {
                Op::ExprVariant { variant, .. } => Some(variant.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(pats, vec!["Publish", "Ack", "Subscribe", "Sequenced"]);
        assert_eq!(exprs, vec!["Heartbeat"]);
    }

    #[test]
    fn match_guard_calls_are_seen() {
        let f = parse(
            "fn f(&self, x: Option<u32>) { match x { \
             Some(nb) if self.pending.contains(&nb) => {} _ => {} } }",
        );
        assert!(f.fns[0].body.iter().any(|o| matches!(
            o,
            Op::MethodCall { name, .. } if name == "contains"
        )));
    }

    #[test]
    fn indexing_and_slicing() {
        let f =
            parse("fn f(&self, i: usize) { self.0[i] += 1; let s = &buf[..n]; let a = [0; 4]; }");
        let count = f.fns[0]
            .body
            .iter()
            .filter(|o| matches!(o, Op::Index { .. }))
            .count();
        assert_eq!(count, 2, "{:?}", f.fns[0].body);
    }

    #[test]
    fn let_binds_and_statement_structure() {
        let f = parse("fn f(&self) { let mut q = self.queue.lock(); q.push(1); }");
        let body = &f.fns[0].body;
        assert!(body.contains(&Op::Bind { name: "q".into() }));
        assert_eq!(
            body.iter().filter(|o| matches!(o, Op::Semi)).count(),
            2,
            "{body:?}"
        );
        assert!(body
            .iter()
            .any(|o| matches!(o, Op::LetStart { paren_depth: 0, .. })));
    }

    #[test]
    fn enums_and_const_initializers() {
        let f = parse(
            "pub enum MessageKind { Advertise, Publish, Ack }\n\
             impl MessageKind { pub const ALL: [MessageKind; 3] = \
             [MessageKind::Advertise, MessageKind::Publish, MessageKind::Ack]; }",
        );
        assert_eq!(f.enums.len(), 1);
        assert_eq!(f.enums[0].variants.len(), 3);
        assert_eq!(f.consts.len(), 1);
        let refs = f.consts[0]
            .body
            .iter()
            .filter(|o| matches!(o, Op::ExprVariant { .. }))
            .count();
        assert_eq!(refs, 3);
    }

    #[test]
    fn strings_reach_ops_but_numbers_do_not() {
        let f = parse(r#"fn f() { reg("xdn_retransmits_total"); let n = 42; }"#);
        let strs: Vec<&str> = f.fns[0]
            .body
            .iter()
            .filter_map(|o| match o {
                Op::Str { value, .. } => Some(value.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(strs, vec!["xdn_retransmits_total"]);
    }

    #[test]
    fn macros_are_recorded() {
        let f = parse(r#"fn f() { unreachable!("guard matched"); vec![1, 2]; }"#);
        let macros: Vec<&str> = f.fns[0]
            .body
            .iter()
            .filter_map(|o| match o {
                Op::Macro { name, .. } => Some(name.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(macros, vec!["unreachable", "vec"]);
    }

    #[test]
    fn parser_survives_malformed_soup() {
        for src in [
            "fn f( {",
            "impl { fn g(",
            "match { => , => }",
            "enum E { A(",
            "fn f() { let = ; matches!( }",
            "}}}}",
            "fn f() { a[ }",
        ] {
            let _ = parse(src);
        }
    }
}
