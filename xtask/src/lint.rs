//! The `cargo xtask lint` policy pass.
//!
//! Enforces project rules ordinary `clippy` levels cannot express,
//! over the token stream produced by [`crate::lexer`]:
//!
//! | rule                | policy                                                        |
//! |---------------------|---------------------------------------------------------------|
//! | `unwrap`            | no `.unwrap()` / `.expect(..)` in non-test broker/net code    |
//! | `unbounded-channel` | no unbounded channels anywhere in non-test first-party code   |
//! | `sleep`             | no `thread::sleep` in non-test first-party code               |
//! | `kind-match`        | no catch-all arm in a `Message`/`MessageKind` match (wire/stats) |
//! | `kind-coverage`     | every `Message` variant is encoded *and* decoded in `wire.rs` |
//! | `instant`           | no `Instant::now()` in broker/core hot paths — time through `xdn_obs::Stopwatch` |
//! | `raw-publish-push`  | no queueing of a literal `Message::Publish` — publications reach the wire only through the broker's sequenced-send path |
//! | `thread-spawn`      | no thread spawning in core/broker outside `core/src/pool.rs` — parallelism goes through the match pool, whose workers are named and joined |
//! | `encode-in-loop`    | no `wire::encode` inside a loop body outside the frame builder — per-peer fan-out must share one `FrameBuf` body, not re-encode per destination |
//!
//! Suppression: a comment containing `xtask: allow(<rule>)` on the
//! flagged line or the line above it, with a justification. Files under
//! `tests/`, `benches/`, `examples/`, `third_party/`, `target/`, and
//! `xtask/` are never linted; `#[cfg(test)]` modules and `#[test]`
//! functions inside linted files are skipped.

use crate::lexer::{lex, Lexed, Tok};
use std::fmt;
use std::path::{Path, PathBuf};

/// Crates whose non-test code must be panic-free on the hot path
/// (`unwrap` rule). The simulator is exempt: it is an experiment
/// harness whose driver API panics on misuse by documented contract.
const UNWRAP_CRATES: &[&str] = &["crates/broker", "crates/net"];
const UNWRAP_EXEMPT: &[&str] = &["crates/net/src/sim.rs"];

/// Crates whose non-test code must not sample `Instant::now()`
/// directly (`instant` rule): broker and core hot paths time through
/// the `xdn_obs::Stopwatch` facade so instrumentation stays uniform
/// and greppable. Transports and the simulator own wall-clock
/// concerns (deadlines, backoff) and are out of scope.
const INSTANT_CRATES: &[&str] = &["crates/broker", "crates/core"];

/// Crates whose non-test code must not spawn threads directly
/// (`thread-spawn` rule): all parallelism in the matching engine goes
/// through `xdn_core::pool::MatchPool`, whose workers are named
/// (`xdn-match-{n}`) and joined before the call returns. A stray
/// `thread::spawn` (or an anonymous scoped spawn) escapes the pool's
/// sizing, metrics, and panic propagation.
const THREAD_SPAWN_CRATES: &[&str] = &["crates/core", "crates/broker"];
const THREAD_SPAWN_EXEMPT: &[&str] = &["crates/core/src/pool.rs"];

/// Files that must handle every `Message`/`MessageKind` variant
/// explicitly (`kind-match` rule).
const KIND_MATCH_FILES: &[&str] = &[
    "crates/broker/src/wire.rs",
    "crates/broker/src/stats.rs",
    "crates/broker/src/message.rs",
];

/// The frame builder: the one file allowed to call `wire::encode`
/// inside a loop (`encode-in-loop` rule) — it owns the codec, and its
/// deprecated compatibility shims are measured against by the wire
/// bench's flat baseline.
const ENCODE_IN_LOOP_EXEMPT: &[&str] = &["crates/broker/src/wire.rs"];

/// One policy violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative path.
    pub file: PathBuf,
    /// 1-based line.
    pub line: u32,
    /// Rule identifier (the `xtask: allow(..)` key).
    pub rule: &'static str,
    /// Human-readable diagnostic.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file.display(),
            self.line,
            self.rule,
            self.message
        )
    }
}

/// Lints every first-party source file under `root`. Returns findings
/// sorted by file and line.
///
/// # Errors
///
/// Returns an error if the tree cannot be read.
pub fn lint_workspace(root: &Path) -> Result<Vec<Finding>, std::io::Error> {
    let mut files = Vec::new();
    collect_rs_files(root, root, &mut files)?;
    files.sort();
    let mut findings = Vec::new();
    let mut wire_src = None;
    let mut message_src = None;
    for rel in &files {
        let src = std::fs::read_to_string(root.join(rel))?;
        if rel == Path::new("crates/broker/src/wire.rs") {
            wire_src = Some(src.clone());
        }
        if rel == Path::new("crates/broker/src/message.rs") {
            message_src = Some(src.clone());
        }
        findings.extend(lint_file(rel, &src));
    }
    if let (Some(wire), Some(message)) = (&wire_src, &message_src) {
        findings.extend(check_kind_coverage(message, wire));
    }
    findings.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    Ok(findings)
}

/// Number of `.rs` files the workspace pass would lint (for reporting).
///
/// # Errors
///
/// Returns an error if the tree cannot be read.
pub fn count_linted_files(root: &Path) -> Result<usize, std::io::Error> {
    let mut files = Vec::new();
    collect_rs_files(root, root, &mut files)?;
    Ok(files.len())
}

pub(crate) fn collect_rs_files(
    root: &Path,
    dir: &Path,
    out: &mut Vec<PathBuf>,
) -> Result<(), std::io::Error> {
    const SKIP_DIRS: &[&str] = &[
        "tests",
        "benches",
        "examples",
        "third_party",
        "target",
        "xtask",
        ".git",
        ".github",
    ];
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if !SKIP_DIRS.contains(&name.as_ref()) {
                collect_rs_files(root, &path, out)?;
            }
        } else if name.ends_with(".rs") {
            if let Ok(rel) = path.strip_prefix(root) {
                out.push(rel.to_path_buf());
            }
        }
    }
    Ok(())
}

/// Lints one file's source, given its workspace-relative path.
pub fn lint_file(rel: &Path, src: &str) -> Vec<Finding> {
    let lexed = lex(src);
    let in_test = test_regions(&lexed);
    let mut findings = Vec::new();
    if UNWRAP_CRATES.iter().any(|c| rel.starts_with(c))
        && !UNWRAP_EXEMPT.iter().any(|e| rel == Path::new(e))
    {
        check_unwrap(rel, &lexed, &in_test, &mut findings);
    }
    check_unbounded_channel(rel, &lexed, &in_test, &mut findings);
    check_sleep(rel, &lexed, &in_test, &mut findings);
    if THREAD_SPAWN_CRATES.iter().any(|c| rel.starts_with(c))
        && !THREAD_SPAWN_EXEMPT.iter().any(|e| rel == Path::new(e))
    {
        check_thread_spawn(rel, &lexed, &in_test, &mut findings);
    }
    if INSTANT_CRATES.iter().any(|c| rel.starts_with(c)) {
        check_instant(rel, &lexed, &in_test, &mut findings);
    }
    if KIND_MATCH_FILES.iter().any(|f| rel == Path::new(f)) {
        check_kind_match(rel, &lexed, &in_test, &mut findings);
    }
    check_raw_publish_push(rel, &lexed, &in_test, &mut findings);
    if !ENCODE_IN_LOOP_EXEMPT.iter().any(|e| rel == Path::new(e)) {
        check_encode_in_loop(rel, &lexed, &in_test, &mut findings);
    }
    findings
}

/// Marks token indices inside `#[cfg(test)]` / `#[test]` items.
fn test_regions(lexed: &Lexed) -> Vec<bool> {
    let toks = &lexed.tokens;
    let mut in_test = vec![false; toks.len()];
    let mut i = 0;
    while i < toks.len() {
        if toks[i].tok == Tok::Punct('#')
            && matches!(toks.get(i + 1).map(|t| &t.tok), Some(Tok::Punct('[')))
        {
            // Find the attribute's closing bracket and look for
            // `test` inside (covers #[test], #[cfg(test)],
            // #[cfg(all(test, ..))], #[tokio::test]-style attributes).
            let mut depth = 0usize;
            let mut j = i + 1;
            let mut mentions_test = false;
            while j < toks.len() {
                match toks[j].tok {
                    Tok::Punct('[') => depth += 1,
                    Tok::Punct(']') => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    Tok::Ident(ref s) if s == "test" => mentions_test = true,
                    _ => {}
                }
                j += 1;
            }
            if mentions_test {
                // Mark the attributed item: everything up to and
                // including the matching close of the first `{` that
                // opens at brace depth 0 after the attribute.
                let mut k = j + 1;
                let mut depth = 0usize;
                let mut opened = false;
                while k < toks.len() {
                    match toks[k].tok {
                        Tok::Punct('{') => {
                            depth += 1;
                            opened = true;
                        }
                        Tok::Punct('}') => {
                            depth = depth.saturating_sub(1);
                            if opened && depth == 0 {
                                break;
                            }
                        }
                        // `mod tests;` or `fn x();` without a body.
                        Tok::Punct(';') if !opened => break,
                        _ => {}
                    }
                    k += 1;
                }
                for flag in in_test.iter_mut().take((k + 1).min(toks.len())).skip(i) {
                    *flag = true;
                }
                i = k + 1;
                continue;
            }
            i = j + 1;
            continue;
        }
        i += 1;
    }
    in_test
}

fn ident_at(lexed: &Lexed, i: usize) -> Option<&str> {
    match lexed.tokens.get(i).map(|t| &t.tok) {
        Some(Tok::Ident(s)) => Some(s),
        _ => None,
    }
}

fn punct_at(lexed: &Lexed, i: usize, c: char) -> bool {
    matches!(lexed.tokens.get(i).map(|t| &t.tok), Some(Tok::Punct(p)) if *p == c)
}

fn check_unwrap(rel: &Path, lexed: &Lexed, in_test: &[bool], findings: &mut Vec<Finding>) {
    for (i, skip) in in_test.iter().enumerate() {
        if *skip || !punct_at(lexed, i, '.') {
            continue;
        }
        let Some(name) = ident_at(lexed, i + 1) else {
            continue;
        };
        if (name == "unwrap" || name == "expect") && punct_at(lexed, i + 2, '(') {
            let line = lexed.tokens[i + 1].line;
            if !lexed.allowed("unwrap", line) {
                findings.push(Finding {
                    file: rel.to_path_buf(),
                    line,
                    rule: "unwrap",
                    message: format!(
                        ".{name}() in non-test hot-path code — return a typed error \
                         (TcpError/WireError) or recover explicitly"
                    ),
                });
            }
        }
    }
}

fn check_unbounded_channel(
    rel: &Path,
    lexed: &Lexed,
    in_test: &[bool],
    findings: &mut Vec<Finding>,
) {
    let toks = &lexed.tokens;
    // Does a `use` statement import the unbounded `channel` from mpsc
    // (e.g. `use std::sync::mpsc::{channel, Sender};`)? If so, bare
    // `channel(..)` calls below are unbounded too.
    let mut imports_mpsc_channel = false;
    let mut i = 0;
    while i < toks.len() {
        if ident_at(lexed, i) == Some("use") {
            let mut saw_mpsc = false;
            let mut saw_channel = false;
            let mut j = i + 1;
            while j < toks.len() && !punct_at(lexed, j, ';') {
                match ident_at(lexed, j) {
                    Some("mpsc") => saw_mpsc = true,
                    Some("channel") => saw_channel = true,
                    _ => {}
                }
                j += 1;
            }
            if saw_mpsc && saw_channel {
                imports_mpsc_channel = true;
            }
            i = j;
        }
        i += 1;
    }
    for i in 0..toks.len() {
        if in_test[i] {
            continue;
        }
        let line = toks[i].line;
        // `mpsc::channel` (the unbounded std constructor) — as a call
        // or as a `use` import.
        if ident_at(lexed, i) == Some("mpsc")
            && punct_at(lexed, i + 1, ':')
            && punct_at(lexed, i + 2, ':')
            && ident_at(lexed, i + 3) == Some("channel")
            && !lexed.allowed("unbounded-channel", toks[i + 3].line)
        {
            findings.push(Finding {
                file: rel.to_path_buf(),
                line,
                rule: "unbounded-channel",
                message: "std::sync::mpsc::channel is unbounded — use sync_channel with an \
                          explicit capacity"
                    .to_owned(),
            });
        }
        // A bare `channel()` / `channel::<T>()` call when the
        // unbounded constructor was imported from mpsc.
        if imports_mpsc_channel
            && ident_at(lexed, i) == Some("channel")
            && ident_at(lexed, i.wrapping_sub(1)) != Some("mpsc")
            && !matches!(ident_at(lexed, i.wrapping_sub(1)), Some("use"))
            && !punct_at(lexed, i.wrapping_sub(1), ',')
            && !punct_at(lexed, i.wrapping_sub(1), '{')
            && (punct_at(lexed, i + 1, '(')
                || (punct_at(lexed, i + 1, ':') && punct_at(lexed, i + 2, ':')))
            && !lexed.allowed("unbounded-channel", line)
        {
            findings.push(Finding {
                file: rel.to_path_buf(),
                line,
                rule: "unbounded-channel",
                message: "channel() here is std::sync::mpsc::channel (unbounded) — use \
                          sync_channel with an explicit capacity"
                    .to_owned(),
            });
        }
        // `unbounded(..)` / `channel::unbounded` (crossbeam's).
        if ident_at(lexed, i) == Some("unbounded")
            && (punct_at(lexed, i + 1, '(')
                || (punct_at(lexed, i.wrapping_sub(1), ':')
                    && punct_at(lexed, i.wrapping_sub(2), ':'))
                || ident_at(lexed, i.wrapping_sub(1)).is_some_and(|s| s == "use"))
            && !lexed.allowed("unbounded-channel", line)
        {
            findings.push(Finding {
                file: rel.to_path_buf(),
                line,
                rule: "unbounded-channel",
                message: "unbounded channel — use a bounded channel with an explicit capacity"
                    .to_owned(),
            });
        }
    }
}

fn check_sleep(rel: &Path, lexed: &Lexed, in_test: &[bool], findings: &mut Vec<Finding>) {
    let toks = &lexed.tokens;
    for i in 0..toks.len() {
        if in_test[i] {
            continue;
        }
        if ident_at(lexed, i) == Some("thread")
            && punct_at(lexed, i + 1, ':')
            && punct_at(lexed, i + 2, ':')
            && ident_at(lexed, i + 3) == Some("sleep")
        {
            let line = toks[i + 3].line;
            if !lexed.allowed("sleep", line) {
                findings.push(Finding {
                    file: rel.to_path_buf(),
                    line,
                    rule: "sleep",
                    message: "thread::sleep in non-test code — poll with a deadline \
                              (await_state) or park on a condvar; if the sleep is a bounded \
                              backoff slice, justify it with `xtask: allow(sleep)`"
                        .to_owned(),
                });
            }
        }
    }
}

/// Flags every `spawn` / `spawn_scoped` call in core/broker outside
/// the pool module (`thread-spawn` rule). Matching on the bare method
/// name deliberately catches `thread::spawn`, `scope.spawn(..)`, and
/// `Builder::spawn{,_scoped}` alike — any of them creates a thread the
/// match pool does not own.
fn check_thread_spawn(rel: &Path, lexed: &Lexed, in_test: &[bool], findings: &mut Vec<Finding>) {
    let toks = &lexed.tokens;
    for i in 0..toks.len() {
        if in_test[i] {
            continue;
        }
        if matches!(ident_at(lexed, i), Some("spawn" | "spawn_scoped"))
            && punct_at(lexed, i + 1, '(')
        {
            let line = toks[i].line;
            if !lexed.allowed("thread-spawn", line) {
                findings.push(Finding {
                    file: rel.to_path_buf(),
                    line,
                    rule: "thread-spawn",
                    message: "thread spawned outside the match pool — route parallelism \
                              through xdn_core::pool::MatchPool so workers stay named, \
                              bounded, and joined; justify an exception with \
                              `xtask: allow(thread-spawn)`"
                        .to_owned(),
                });
            }
        }
    }
}

fn check_instant(rel: &Path, lexed: &Lexed, in_test: &[bool], findings: &mut Vec<Finding>) {
    let toks = &lexed.tokens;
    for i in 0..toks.len() {
        if in_test[i] {
            continue;
        }
        if ident_at(lexed, i) == Some("Instant")
            && punct_at(lexed, i + 1, ':')
            && punct_at(lexed, i + 2, ':')
            && ident_at(lexed, i + 3) == Some("now")
        {
            let line = toks[i + 3].line;
            if !lexed.allowed("instant", line) {
                findings.push(Finding {
                    file: rel.to_path_buf(),
                    line,
                    rule: "instant",
                    message: "Instant::now() in a broker/core hot path — time through \
                              xdn_obs::Stopwatch (or justify with `xtask: allow(instant)`) so \
                              instrumentation stays behind the observability facade"
                        .to_owned(),
                });
            }
        }
    }
}

/// Flags `push_back(..)` / `push_front(..)` calls whose argument
/// contains a literal `Message::Publish` (`raw-publish-push` rule).
/// Publications must enter a transport queue only as the output of
/// `Broker::handle`, which wraps them in `Message::Sequenced` headers
/// and buffers them for retransmission; a hand-queued raw publication
/// silently escapes the at-least-once channel — unsequenced, unacked,
/// invisible to the dedup windows.
fn check_raw_publish_push(
    rel: &Path,
    lexed: &Lexed,
    in_test: &[bool],
    findings: &mut Vec<Finding>,
) {
    let toks = &lexed.tokens;
    for (i, tested) in in_test.iter().enumerate() {
        if *tested {
            continue;
        }
        let is_push = matches!(ident_at(lexed, i), Some("push_back" | "push_front"));
        if !is_push || !punct_at(lexed, i + 1, '(') {
            continue;
        }
        // Scan the argument list for `Message::Publish`, tracking
        // paren depth so the scan stops at the call's closing paren.
        let mut depth = 0i32;
        let mut j = i + 1;
        while j < toks.len() {
            match &toks[j].tok {
                Tok::Punct('(') => depth += 1,
                Tok::Punct(')') => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                Tok::Ident(id)
                    if id == "Message"
                        && punct_at(lexed, j + 1, ':')
                        && punct_at(lexed, j + 2, ':')
                        && ident_at(lexed, j + 3) == Some("Publish") =>
                {
                    let line = toks[j].line;
                    if !lexed.allowed("raw-publish-push", line) {
                        findings.push(Finding {
                            file: rel.to_path_buf(),
                            line,
                            rule: "raw-publish-push",
                            message: "raw Message::Publish queued directly — publications \
                                      must leave a broker as Broker::handle output so they \
                                      ride the sequenced at-least-once channel; justify an \
                                      exception with `xtask: allow(raw-publish-push)`"
                                .to_owned(),
                        });
                    }
                }
                _ => {}
            }
            j += 1;
        }
    }
}

/// Marks token indices inside `for`/`while`/`loop` bodies. A `for`
/// keyword only counts as a loop when a top-level `in` separates its
/// pattern from the iterated expression — `impl Trait for Type { .. }`
/// has none and is not a loop body.
fn loop_regions(lexed: &Lexed) -> Vec<bool> {
    let toks = &lexed.tokens;
    let mut in_loop = vec![false; toks.len()];
    let mut i = 0;
    while i < toks.len() {
        let kw = match ident_at(lexed, i) {
            Some(k @ ("for" | "while" | "loop")) => k.to_owned(),
            _ => {
                i += 1;
                continue;
            }
        };
        // Find the body's opening brace: the first `{` with the
        // header's (), [] balanced. A `;` first means this was not a
        // loop expression after all.
        let mut j = i + 1;
        let mut paren = 0i32;
        let mut bracket = 0i32;
        let mut saw_in = false;
        let mut found = false;
        while j < toks.len() {
            match toks[j].tok {
                Tok::Punct('(') => paren += 1,
                Tok::Punct(')') => paren -= 1,
                Tok::Punct('[') => bracket += 1,
                Tok::Punct(']') => bracket -= 1,
                Tok::Punct('{') if paren == 0 && bracket == 0 => {
                    found = true;
                    break;
                }
                Tok::Punct(';') => break,
                Tok::Ident(ref s) if s == "in" && paren == 0 && bracket == 0 => saw_in = true,
                _ => {}
            }
            j += 1;
        }
        if !found || (kw == "for" && !saw_in) {
            i += 1;
            continue;
        }
        // Mark body tokens through the matching close brace. Nested
        // loops are re-detected inside; re-marking is idempotent.
        let mut depth = 0i32;
        let mut k = j;
        while k < toks.len() {
            match toks[k].tok {
                Tok::Punct('{') => depth += 1,
                Tok::Punct('}') => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            in_loop[k] = true;
            k += 1;
        }
        i = j + 1;
    }
    in_loop
}

/// Flags `wire::encode(..)` calls inside loop bodies (`encode-in-loop`
/// rule). A per-peer send loop that re-encodes its message allocates
/// and serialises once per destination; fan-out must go through
/// `FrameBuf`, which encodes the shared body exactly once and stamps
/// only the per-peer sequencing header.
fn check_encode_in_loop(rel: &Path, lexed: &Lexed, in_test: &[bool], findings: &mut Vec<Finding>) {
    let toks = &lexed.tokens;
    let in_loop = loop_regions(lexed);
    for i in 0..toks.len() {
        if in_test[i] || !in_loop[i] {
            continue;
        }
        if ident_at(lexed, i) == Some("wire")
            && punct_at(lexed, i + 1, ':')
            && punct_at(lexed, i + 2, ':')
            && ident_at(lexed, i + 3) == Some("encode")
            && punct_at(lexed, i + 4, '(')
        {
            let line = toks[i + 3].line;
            if !lexed.allowed("encode-in-loop", line) {
                findings.push(Finding {
                    file: rel.to_path_buf(),
                    line,
                    rule: "encode-in-loop",
                    message: "wire::encode inside a loop — a per-peer send loop re-encodes the \
                              frame once per destination; build one FrameBuf and stamp per-peer \
                              headers instead, or justify with `xtask: allow(encode-in-loop)`"
                        .to_owned(),
                });
            }
        }
    }
}

/// Flags catch-all arms (`_ =>` or a bare binding) in any `match`
/// whose patterns mention `Message::` or `MessageKind::`. Wire codec
/// and stats must break loudly when a protocol variant is added.
fn check_kind_match(rel: &Path, lexed: &Lexed, in_test: &[bool], findings: &mut Vec<Finding>) {
    let toks = &lexed.tokens;
    let mut i = 0;
    while i < toks.len() {
        if in_test[i] || ident_at(lexed, i) != Some("match") {
            i += 1;
            continue;
        }
        // Find the match body's opening brace: the first `{` with all
        // (), [] in the scrutinee balanced.
        let mut j = i + 1;
        let mut paren = 0i32;
        let mut bracket = 0i32;
        while j < toks.len() {
            match toks[j].tok {
                Tok::Punct('(') => paren += 1,
                Tok::Punct(')') => paren -= 1,
                Tok::Punct('[') => bracket += 1,
                Tok::Punct(']') => bracket -= 1,
                Tok::Punct('{') if paren == 0 && bracket == 0 => break,
                Tok::Punct(';') => break, // not a match expression after all
                _ => {}
            }
            j += 1;
        }
        if j >= toks.len() || !punct_at(lexed, j, '{') {
            i += 1;
            continue;
        }
        let body_open = j;
        // Walk depth-1 arms: collect each pattern (tokens up to the
        // top-level `=>`).
        let mut depth = 1i32;
        let mut k = body_open + 1;
        let mut pat_start = k;
        let mut in_pattern = true;
        let mut patterns: Vec<(usize, usize)> = Vec::new();
        let body_close;
        loop {
            if k >= toks.len() {
                body_close = k;
                break;
            }
            match toks[k].tok {
                Tok::Punct('{') | Tok::Punct('(') | Tok::Punct('[') => depth += 1,
                Tok::Punct('}') | Tok::Punct(')') | Tok::Punct(']') => {
                    depth -= 1;
                    if depth == 0 {
                        body_close = k;
                        break;
                    }
                    // A `}` closing an arm's block body at depth 1
                    // starts a new pattern (comma optional).
                    if depth == 1 && matches!(toks[k].tok, Tok::Punct('}')) && !in_pattern {
                        in_pattern = true;
                        pat_start = k + 1;
                    }
                }
                Tok::Punct('=') if depth == 1 && in_pattern && punct_at(lexed, k + 1, '>') => {
                    patterns.push((pat_start, k));
                    in_pattern = false;
                    k += 1; // skip '>'
                }
                Tok::Punct(',') if depth == 1 && !in_pattern => {
                    in_pattern = true;
                    pat_start = k + 1;
                }
                _ => {}
            }
            k += 1;
        }
        let mentions_kind = patterns.iter().any(|&(s, e)| {
            (s..e).any(|t| {
                matches!(&toks[t].tok, Tok::Ident(w) if w == "Message" || w == "MessageKind")
                    && punct_at(lexed, t + 1, ':')
                    && punct_at(lexed, t + 2, ':')
            })
        });
        if mentions_kind {
            for &(s, e) in &patterns {
                // Skip a leading `|` (rare) — then a catch-all is a
                // single `_` or a single bare identifier.
                let span: Vec<&Tok> = toks[s..e].iter().map(|t| &t.tok).collect();
                let is_catch_all = match span.as_slice() {
                    [Tok::Ident(w)] => w != "true" && w != "false",
                    [Tok::Punct('_')] => true,
                    _ => matches!(span.as_slice(), [Tok::Ident(w)] if w == "_"),
                };
                if is_catch_all {
                    let line = toks[s].line;
                    if !lexed.allowed("kind-match", line) {
                        findings.push(Finding {
                            file: rel.to_path_buf(),
                            line,
                            rule: "kind-match",
                            message: "catch-all arm in a Message/MessageKind match — list every \
                                      variant so adding one is a compile/lint error here"
                                .to_owned(),
                        });
                    }
                }
            }
        }
        i = body_close.max(i) + 1;
    }
}

/// Parses the `Message` enum's variant names out of `message.rs` and
/// requires `wire.rs` to mention `Message::<Variant>` at least twice —
/// once on the encode path and once on the decode path.
fn check_kind_coverage(message_src: &str, wire_src: &str) -> Vec<Finding> {
    let variants = enum_variants(message_src, "Message");
    let mut findings = Vec::new();
    if variants.is_empty() {
        findings.push(Finding {
            file: PathBuf::from("crates/broker/src/message.rs"),
            line: 1,
            rule: "kind-coverage",
            message: "could not locate `enum Message` — the kind-coverage rule needs it".to_owned(),
        });
        return findings;
    }
    let wire = lex(wire_src);
    let in_test = test_regions(&wire);
    for variant in &variants {
        let mut count = 0usize;
        for (i, skip) in in_test.iter().enumerate() {
            if !skip
                && ident_at(&wire, i) == Some("Message")
                && punct_at(&wire, i + 1, ':')
                && punct_at(&wire, i + 2, ':')
                && ident_at(&wire, i + 3) == Some(variant)
            {
                count += 1;
            }
        }
        if count < 2 {
            findings.push(Finding {
                file: PathBuf::from("crates/broker/src/wire.rs"),
                line: 1,
                rule: "kind-coverage",
                message: format!(
                    "Message::{variant} appears {count} time(s) in non-test wire.rs — every \
                     variant must be handled on both the encode and the decode path"
                ),
            });
        }
    }
    findings
}

/// Extracts variant names from `pub enum <name> { .. }` in `src`.
fn enum_variants(src: &str, name: &str) -> Vec<String> {
    let lexed = lex(src);
    let toks = &lexed.tokens;
    let mut i = 0;
    while i < toks.len() {
        if ident_at(&lexed, i) == Some("enum") && ident_at(&lexed, i + 1) == Some(name) {
            break;
        }
        i += 1;
    }
    if i >= toks.len() {
        return Vec::new();
    }
    // Opening brace of the enum body.
    let mut j = i + 2;
    while j < toks.len() && !punct_at(&lexed, j, '{') {
        j += 1;
    }
    let mut variants = Vec::new();
    let mut depth = 1i32;
    let mut k = j + 1;
    let mut expect_variant = true;
    while k < toks.len() && depth > 0 {
        match &toks[k].tok {
            Tok::Punct('{') | Tok::Punct('(') | Tok::Punct('[') => depth += 1,
            Tok::Punct('}') | Tok::Punct(')') | Tok::Punct(']') => depth -= 1,
            Tok::Punct(',') if depth == 1 => expect_variant = true,
            Tok::Punct('#') if depth == 1 => {
                // Skip the variant's attribute `#[ .. ]`.
                let mut d = 0i32;
                k += 1;
                while k < toks.len() {
                    match toks[k].tok {
                        Tok::Punct('[') => d += 1,
                        Tok::Punct(']') => {
                            d -= 1;
                            if d == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    k += 1;
                }
            }
            Tok::Ident(w) if depth == 1 && expect_variant => {
                variants.push(w.clone());
                expect_variant = false;
            }
            _ => {}
        }
        k += 1;
    }
    variants
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint(path: &str, src: &str) -> Vec<Finding> {
        lint_file(Path::new(path), src)
    }

    const TCP: &str = "crates/net/src/tcp.rs";

    #[test]
    fn unwrap_flagged_in_hot_path() {
        let f = lint(TCP, "fn go(x: Option<u8>) -> u8 { x.unwrap() }");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "unwrap");
        assert_eq!(f[0].line, 1);
    }

    #[test]
    fn expect_flagged_in_hot_path() {
        let f = lint(TCP, "fn go() {\n  lock().expect(\"poisoned\");\n}");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].line, 2);
    }

    #[test]
    fn unwrap_ok_in_tests_and_elsewhere() {
        let src = "#[cfg(test)]\nmod tests {\n fn t() { x.unwrap(); }\n}";
        assert!(lint(TCP, src).is_empty());
        assert!(lint("crates/core/src/cover.rs", "fn f() { x.unwrap(); }").is_empty());
        assert!(lint("crates/net/src/sim.rs", "fn f() { x.unwrap(); }").is_empty());
    }

    #[test]
    fn test_fn_attribute_is_skipped() {
        let src = "#[test]\nfn t() { x.unwrap(); }\nfn hot() { y.unwrap(); }";
        let f = lint(TCP, src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].line, 3);
    }

    #[test]
    fn allow_marker_suppresses() {
        let src = "// xtask: allow(unwrap) recovering from poison is worse\nfn f() { x.unwrap(); }";
        assert!(lint(TCP, src).is_empty());
    }

    #[test]
    fn unwrap_in_comments_and_strings_ignored() {
        let src = "// x.unwrap()\nfn f() { let s = \"don't .unwrap() me\"; }";
        assert!(lint(TCP, src).is_empty());
    }

    #[test]
    fn unbounded_channels_flagged_everywhere() {
        let f = lint("crates/core/src/lib.rs", "let (tx, rx) = mpsc::channel();");
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "unbounded-channel");
        let f = lint(
            TCP,
            "use crossbeam::channel::unbounded;\nlet c = unbounded();",
        );
        assert_eq!(f.len(), 2);
        assert!(lint(TCP, "let (tx, rx) = sync_channel(64);").is_empty());
    }

    #[test]
    fn bare_channel_call_flagged_when_imported_from_mpsc() {
        let src = "use std::sync::mpsc::{channel, Sender};\n\
                   fn f() { let (tx, rx) = channel::<u8>(); let (a, b) = channel(); }";
        let f = lint(TCP, src);
        assert_eq!(f.len(), 2, "{f:?}");
        assert!(f.iter().all(|x| x.rule == "unbounded-channel"));
        // Without the import, a bare `channel()` may be anything
        // (e.g. a local sync wrapper) and is not flagged.
        assert!(lint(TCP, "fn f() { let (tx, rx) = channel(); }").is_empty());
        // sync_channel imports are fine.
        let ok = "use std::sync::mpsc::{sync_channel, Receiver};\nfn f() { sync_channel(4); }";
        assert!(lint(TCP, ok).is_empty());
    }

    #[test]
    fn raw_publish_push_flagged() {
        let f = lint(
            TCP,
            "fn f(q: &FrameQueue, p: Publication) { q.push_back(Message::Publish(p)); }",
        );
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "raw-publish-push");
        let f = lint(
            TCP,
            "fn f() { queue.push_front(wrap(Message::Publish(p.clone()))); }",
        );
        assert_eq!(f.len(), 1, "nested in a call argument still flagged");
    }

    #[test]
    fn raw_publish_push_ignores_clean_pushes() {
        // Generic re-queues and control frames are the sanctioned uses.
        assert!(lint(TCP, "fn f() { q.push_back(msg.clone()); }").is_empty());
        assert!(lint(TCP, "fn f() { q.push_front(Message::SyncRequest); }").is_empty());
        // A Message::Publish *outside* the argument list is not a push.
        assert!(lint(
            TCP,
            "fn f() { q.push_back(x); let m = Message::Publish(p); }"
        )
        .is_empty());
    }

    #[test]
    fn raw_publish_push_allows_marker_and_tests() {
        let src = "// xtask: allow(raw-publish-push) loopback fixture\n\
                   fn f() { q.push_back(Message::Publish(p)); }";
        assert!(lint(TCP, src).is_empty());
        let src = "#[cfg(test)]\nmod tests {\n fn t() { q.push_back(Message::Publish(p)); }\n}";
        assert!(lint(TCP, src).is_empty());
    }

    #[test]
    fn sleep_flagged_without_marker() {
        let f = lint(
            "crates/broker/src/broker.rs",
            "fn f() { std::thread::sleep(d); }",
        );
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "sleep");
        let ok = "// xtask: allow(sleep) bounded backoff slice\nfn f() { std::thread::sleep(d); }";
        assert!(lint("crates/broker/src/broker.rs", ok).is_empty());
    }

    #[test]
    fn instant_flagged_in_broker_and_core_only() {
        let src = "fn f() { let t = Instant::now(); }";
        let f = lint("crates/broker/src/broker.rs", src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "instant");
        assert_eq!(lint("crates/core/src/rtable.rs", src).len(), 1);
        // Transports, the simulator, and obs itself own wall-clock
        // concerns.
        assert!(lint("crates/net/src/tcp.rs", src).is_empty());
        assert!(lint("crates/obs/src/time.rs", src).is_empty());
        // Tests and allow markers opt out.
        let test_src = "#[cfg(test)]\nmod tests {\n fn t() { Instant::now(); }\n}";
        assert!(lint("crates/broker/src/broker.rs", test_src).is_empty());
        let allowed = "// xtask: allow(instant) deadline, not a latency sample\n\
                       fn f() { Instant::now(); }";
        assert!(lint("crates/core/src/rtable.rs", allowed).is_empty());
    }

    #[test]
    fn thread_spawn_flagged_in_core_and_broker_only() {
        let src = "fn f() { std::thread::spawn(|| {}); }";
        let f = lint("crates/core/src/shard.rs", src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "thread-spawn");
        assert_eq!(lint("crates/broker/src/broker.rs", src).len(), 1);
        // Transports own their threads; the pool module is the
        // sanctioned spawn site.
        assert!(lint("crates/net/src/live.rs", src).is_empty());
        assert!(lint("crates/core/src/pool.rs", src).is_empty());
        // Scoped and builder spawns are threads too.
        let scoped = "fn f(s: &Scope) { s.spawn(|| {}); }";
        assert_eq!(lint("crates/core/src/rtable.rs", scoped).len(), 1);
        let builder = "fn f(b: Builder, s: &Scope) { b.spawn_scoped(s, || {}); }";
        assert_eq!(lint("crates/broker/src/reliable.rs", builder).len(), 1);
        // Tests and allow markers opt out.
        let test_src = "#[cfg(test)]\nmod tests {\n fn t() { std::thread::spawn(|| {}); }\n}";
        assert!(lint("crates/core/src/shard.rs", test_src).is_empty());
        let allowed = "// xtask: allow(thread-spawn) one-shot watchdog, joined below\n\
                       fn f() { std::thread::spawn(|| {}); }";
        assert!(lint("crates/core/src/shard.rs", allowed).is_empty());
    }

    #[test]
    fn encode_in_loop_flagged() {
        let src =
            "fn f(peers: &[Dest]) {\n for d in peers {\n  w.write_all(&wire::encode(&m));\n }\n}";
        let f = lint(TCP, src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "encode-in-loop");
        assert_eq!(f[0].line, 3);
        // `while` and bare `loop` bodies count too.
        let f = lint(TCP, "fn f() { while go() { wire::encode(&m); } }");
        assert_eq!(f.len(), 1, "{f:?}");
        let f = lint(TCP, "fn f() { loop { wire::encode(&m); break; } }");
        assert_eq!(f.len(), 1, "{f:?}");
    }

    #[test]
    fn encode_outside_loops_and_in_builder_ok() {
        // A single encode outside any loop is fine (it is merely
        // deprecated, which rustc reports).
        assert!(lint(TCP, "fn f() { let b = wire::encode(&m); }").is_empty());
        // The frame builder itself is exempt.
        let src = "fn f() { for m in msgs { wire::encode(m); } }";
        assert!(lint("crates/broker/src/wire.rs", src).is_empty());
        // encode_into in a loop is the sanctioned pooled path.
        assert!(lint(
            TCP,
            "fn f() { for m in msgs { wire::encode_into(m, &mut buf); } }"
        )
        .is_empty());
    }

    #[test]
    fn encode_in_loop_impl_for_is_not_a_loop() {
        // `impl Trait for Type` must not mark the impl body as a loop.
        let src = "impl FrameSink for TcpSink<'_> {\n fn ship(&mut self) { wire::encode(&m); }\n}";
        assert!(lint(TCP, src).is_empty());
    }

    #[test]
    fn encode_in_loop_allows_marker_and_tests() {
        let src = "fn f() {\n for d in peers {\n  // xtask: allow(encode-in-loop) flat baseline\n  wire::encode(&m);\n }\n}";
        assert!(lint(TCP, src).is_empty());
        let src = "#[cfg(test)]\nmod tests {\n fn t() { for d in peers { wire::encode(&m); } }\n}";
        assert!(lint(TCP, src).is_empty());
    }

    #[test]
    fn kind_match_catch_all_flagged() {
        let src = "fn f(m: &Message) {\n match m {\n  Message::Heartbeat => {}\n  _ => {}\n }\n}";
        let f = lint("crates/broker/src/wire.rs", src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "kind-match");
        assert_eq!(f[0].line, 4);
    }

    #[test]
    fn kind_match_binding_catch_all_flagged() {
        let src = "fn f(k: MessageKind) -> u8 {\n match k {\n  MessageKind::Publish => 1,\n  other => 0,\n }\n}";
        let f = lint("crates/broker/src/stats.rs", src);
        assert_eq!(f.len(), 1, "{f:?}");
    }

    #[test]
    fn non_kind_matches_may_catch_all() {
        let src = "fn f(tag: u8) {\n match tag {\n  TAG_A => {}\n  other => {}\n }\n}";
        assert!(lint("crates/broker/src/wire.rs", src).is_empty());
        // And kind matches in other files are out of scope.
        let src = "fn f(m: &Message) { match m { Message::Heartbeat => {}, _ => {} } }";
        assert!(lint("crates/net/src/live.rs", src).is_empty());
    }

    #[test]
    fn exhaustive_kind_match_passes() {
        let src = "fn f(m: &Message) {\n match m {\n  Message::Heartbeat => {}\n  Message::Publish(p) => {}\n }\n}";
        assert!(lint("crates/broker/src/wire.rs", src).is_empty());
    }

    #[test]
    fn enum_variants_parsed() {
        let src = "/// doc\npub enum Message {\n  /// doc\n  Advertise { id: u8 },\n  Publish(P),\n  Heartbeat,\n}";
        assert_eq!(
            enum_variants(src, "Message"),
            vec!["Advertise", "Publish", "Heartbeat"]
        );
    }

    #[test]
    fn kind_coverage_detects_missing_variant() {
        let message = "pub enum Message { A(u8), B, }";
        let wire = "fn encode(m: &Message) { match m { Message::A(x) => {}, Message::B => {} } }\n\
                    fn decode() -> Message { if c { Message::A(0) } else { Message::B } }";
        assert!(check_kind_coverage(message, wire).is_empty());
        let wire_missing =
            "fn encode(m: &Message) { match m { Message::A(x) => {}, Message::B => {} } }\n\
                            fn decode() -> Message { Message::A(0) }";
        let f = check_kind_coverage(message, wire_missing);
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("Message::B"));
    }
}
