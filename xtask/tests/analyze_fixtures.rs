//! Golden-file fixtures for `cargo xtask analyze`: each test seeds a
//! miniature workspace containing exactly one violation and asserts
//! the analyzer reports it with the expected `file:line` and rule —
//! and nothing else. This is the proof that each semantic pass fires,
//! independent of the real tree (which must stay clean).

use std::path::{Path, PathBuf};
use xtask::analyze::analyze_workspace;
use xtask::lint::Finding;

/// Builds a fresh fixture root under `target/tmp` and populates it.
fn fixture(name: &str, files: &[(&str, &str)]) -> PathBuf {
    let root = Path::new(env!("CARGO_TARGET_TMPDIR")).join(name);
    if root.exists() {
        std::fs::remove_dir_all(&root).expect("clear stale fixture");
    }
    for (rel, contents) in files {
        let path = root.join(rel);
        std::fs::create_dir_all(path.parent().expect("parent")).expect("mkdir");
        std::fs::write(&path, contents).expect("write fixture file");
    }
    root
}

fn run(root: &Path) -> Vec<Finding> {
    analyze_workspace(root).expect("analyze fixture").findings
}

#[test]
fn panic_reachability_crosses_two_call_hops() {
    let root = fixture(
        "panic-two-hops",
        &[(
            "crates/core/src/rtable.rs",
            "pub struct PublicationRouter;\n\
             impl PublicationRouter {\n\
             \x20   pub fn matching_hops(&self) {\n\
             \x20       helper_a();\n\
             \x20   }\n\
             }\n\
             pub fn helper_a() {\n\
             \x20   helper_b();\n\
             }\n\
             pub fn helper_b() -> u32 {\n\
             \x20   let v = vec![1, 2, 3];\n\
             \x20   v[0]\n\
             }\n",
        )],
    );
    let findings = run(&root);
    assert_eq!(findings.len(), 1, "exactly one finding: {findings:?}");
    let f = &findings[0];
    assert_eq!(f.rule, "panic-path");
    assert_eq!(f.file, Path::new("crates/core/src/rtable.rs"));
    assert_eq!(f.line, 12, "the `v[0]` index, two call hops from the root");
    assert!(
        f.message.contains("indexing in helper_b"),
        "names the source: {}",
        f.message
    );
    assert!(
        f.message
            .contains("PublicationRouter::matching_hops (rtable.rs:3) → helper_a → helper_b"),
        "full root-to-sink chain: {}",
        f.message
    );
    assert!(
        f.message.contains("(call at rtable.rs:8)"),
        "cites the call entering the panicking fn: {}",
        f.message
    );
}

#[test]
fn panic_baseline_suppresses_known_sites() {
    let root = fixture(
        "panic-baselined",
        &[
            (
                "crates/core/src/rtable.rs",
                "pub fn route_batch() -> u32 {\n\
                 \x20   let v = vec![1];\n\
                 \x20   v[0]\n\
                 }\n",
            ),
            (
                "xtask/analyze-baseline.txt",
                "# comment\ncrates/core/src/rtable.rs\troute_batch\tindexing\n",
            ),
        ],
    );
    let analysis = analyze_workspace(&root).expect("analyze fixture");
    assert!(
        analysis.findings.is_empty(),
        "baselined site must not fail the gate: {:?}",
        analysis.findings
    );
    assert!(analysis.stale_baseline.is_empty());
}

#[test]
fn lock_order_inversion_reports_both_sites() {
    let root = fixture(
        "lock-inversion",
        &[(
            "crates/net/src/live.rs",
            "pub struct Fanout;\n\
             impl Fanout {\n\
             \x20   pub fn forward(&self) {\n\
             \x20       let stats = self.stats.lock();\n\
             \x20       let conns = self.conns.lock();\n\
             \x20       drop(conns);\n\
             \x20       drop(stats);\n\
             \x20   }\n\
             \x20   pub fn backward(&self) {\n\
             \x20       let conns = self.conns.lock();\n\
             \x20       let stats = self.stats.lock();\n\
             \x20       drop(stats);\n\
             \x20       drop(conns);\n\
             \x20   }\n\
             }\n",
        )],
    );
    let findings = run(&root);
    assert_eq!(
        findings.len(),
        2,
        "one finding per inversion side: {findings:?}"
    );
    for f in &findings {
        assert_eq!(f.rule, "lock-order");
        assert_eq!(f.file, Path::new("crates/net/src/live.rs"));
    }
    // `forward` acquires stats→conns at line 5; `backward` conns→stats
    // at line 11; each cites the other as the conflicting order.
    assert_eq!(findings[0].line, 5);
    assert!(
        findings[0]
            .message
            .contains("Fanout::forward acquires `stats` then `conns`"),
        "{}",
        findings[0].message
    );
    assert!(
        findings[0].message.contains("crates/net/src/live.rs:11"),
        "cites the opposite site: {}",
        findings[0].message
    );
    assert_eq!(findings[1].line, 11);
    assert!(
        findings[1]
            .message
            .contains("Fanout::backward acquires `conns` then `stats`"),
        "{}",
        findings[1].message
    );
}

#[test]
fn lock_order_inversion_through_a_callee_is_caught() {
    let root = fixture(
        "lock-transitive",
        &[(
            "crates/broker/src/pool.rs",
            "pub fn outer() {\n\
             \x20   let a = self.alpha.lock();\n\
             \x20   inner();\n\
             \x20   drop(a);\n\
             }\n\
             pub fn inner() {\n\
             \x20   let b = self.beta.lock();\n\
             \x20   drop(b);\n\
             }\n\
             pub fn other() {\n\
             \x20   let b = self.beta.lock();\n\
             \x20   let a = self.alpha.lock();\n\
             \x20   drop(a);\n\
             \x20   drop(b);\n\
             }\n",
        )],
    );
    let findings = run(&root);
    assert_eq!(findings.len(), 2, "{findings:?}");
    let transitive = findings
        .iter()
        .find(|f| f.message.contains("via inner"))
        .expect("one side must be attributed through the callee");
    assert_eq!(transitive.rule, "lock-order");
    assert_eq!(transitive.line, 3, "the call site that reaches beta");
}

/// A well-formed miniature protocol layer; each protocol test breaks
/// exactly one aspect of it.
const MESSAGE_OK: &str = "pub enum Message {\n\
    \x20   Publish(u32),\n\
    \x20   Ack { seq: u64 },\n\
    }\n\
    pub enum MessageKind {\n\
    \x20   Publish,\n\
    \x20   Ack,\n\
    }\n\
    impl MessageKind {\n\
    \x20   pub const ALL: [MessageKind; 2] = [MessageKind::Publish, MessageKind::Ack];\n\
    }\n\
    impl Message {\n\
    \x20   pub fn kind(&self) -> MessageKind {\n\
    \x20       match self {\n\
    \x20           Message::Publish(_) => MessageKind::Publish,\n\
    \x20           Message::Ack { .. } => MessageKind::Ack,\n\
    \x20       }\n\
    \x20   }\n\
    }\n";

const WIRE_OK: &str = "use crate::message::Message;\n\
    pub fn encode(m: &Message) -> u8 {\n\
    \x20   match m {\n\
    \x20       Message::Publish(_) => 0,\n\
    \x20       Message::Ack { .. } => 1,\n\
    \x20   }\n\
    }\n\
    pub fn decode(tag: u8) -> Message {\n\
    \x20   if tag == 0 {\n\
    \x20       Message::Publish(0)\n\
    \x20   } else {\n\
    \x20       Message::Ack { seq: 0 }\n\
    \x20   }\n\
    }\n";

const BROKER_OK: &str = "use crate::message::Message;\n\
    pub struct Broker;\n\
    impl Broker {\n\
    \x20   pub fn handle(&mut self, msg: Message) {\n\
    \x20       match msg {\n\
    \x20           Message::Publish(_) => {}\n\
    \x20           Message::Ack { .. } => {}\n\
    \x20       }\n\
    \x20   }\n\
    }\n";

#[test]
fn protocol_clean_fixture_passes() {
    let root = fixture(
        "protocol-clean",
        &[
            ("crates/broker/src/message.rs", MESSAGE_OK),
            ("crates/broker/src/wire.rs", WIRE_OK),
            ("crates/broker/src/broker.rs", BROKER_OK),
        ],
    );
    let findings = run(&root);
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn protocol_missing_dispatch_arm_is_reported() {
    let broker_missing_ack: &str = "use crate::message::Message;\n\
        pub struct Broker;\n\
        impl Broker {\n\
        \x20   pub fn handle(&mut self, msg: Message) {\n\
        \x20       match msg {\n\
        \x20           Message::Publish(_) => {}\n\
        \x20           _ => {}\n\
        \x20       }\n\
        \x20   }\n\
        }\n";
    let root = fixture(
        "protocol-missing-arm",
        &[
            ("crates/broker/src/message.rs", MESSAGE_OK),
            ("crates/broker/src/wire.rs", WIRE_OK),
            ("crates/broker/src/broker.rs", broker_missing_ack),
        ],
    );
    let findings = run(&root);
    assert_eq!(findings.len(), 1, "{findings:?}");
    let f = &findings[0];
    assert_eq!(f.rule, "protocol");
    assert_eq!(f.file, Path::new("crates/broker/src/message.rs"));
    assert_eq!(f.line, 3, "the `Ack` variant's declaration");
    assert!(
        f.message
            .contains("Message::Ack has no dispatch arm in any Broker::handle* function"),
        "{}",
        f.message
    );
}

#[test]
fn protocol_duplicate_all_entry_is_reported() {
    let message_dup_all = MESSAGE_OK.replace(
        "[MessageKind::Publish, MessageKind::Ack]",
        "[MessageKind::Publish, MessageKind::Publish]",
    );
    let root = fixture(
        "protocol-dup-all",
        &[
            ("crates/broker/src/message.rs", message_dup_all.as_str()),
            ("crates/broker/src/wire.rs", WIRE_OK),
            ("crates/broker/src/broker.rs", BROKER_OK),
        ],
    );
    let findings = run(&root);
    assert_eq!(findings.len(), 2, "{findings:?}");
    for f in &findings {
        assert_eq!(f.rule, "protocol");
        assert_eq!(f.file, Path::new("crates/broker/src/message.rs"));
        assert_eq!(f.line, 10, "the `ALL` const's declaration");
    }
    assert!(
        findings[0].message.contains("MessageKind::Ack appears 0x"),
        "{}",
        findings[0].message
    );
    assert!(
        findings[1]
            .message
            .contains("MessageKind::Publish appears 2x"),
        "{}",
        findings[1].message
    );
}

#[test]
fn protocol_sequenced_outside_reliable_layer_is_reported() {
    let rogue: &str = "use crate::message::Message;\n\
        pub fn smuggle(inner: Message) -> Message {\n\
        \x20   Message::Sequenced { seq: 1 }\n\
        }\n";
    let message_with_seq = MESSAGE_OK.replace(
        "pub enum Message {\n",
        "pub enum Message {\n\x20   Sequenced { seq: u64 },\n",
    );
    // wire.rs is an allowed builder and must pattern/construct the new
    // variant; broker.rs dispatches it.
    let wire_with_seq = WIRE_OK
        .replace(
            "Message::Ack { .. } => 1,\n",
            "Message::Ack { .. } => 1,\n\x20       Message::Sequenced { .. } => 2,\n",
        )
        .replace(
            "Message::Ack { seq: 0 }\n",
            "if tag == 2 { Message::Sequenced { seq: 0 } } else { Message::Ack { seq: 0 } }\n",
        );
    let broker_with_seq = BROKER_OK.replace(
        "Message::Ack { .. } => {}\n",
        "Message::Ack { .. } => {}\n\x20           Message::Sequenced { .. } => {}\n",
    );
    let message_full = message_with_seq
        .replace(
            "pub enum MessageKind {\n",
            "pub enum MessageKind {\n\x20   Sequenced,\n",
        )
        .replace(
            "[MessageKind::Publish, MessageKind::Ack]",
            "[MessageKind::Sequenced, MessageKind::Publish, MessageKind::Ack]",
        )
        .replace("[MessageKind; 2]", "[MessageKind; 3]")
        .replace(
            "match self {\n",
            "match self {\n\x20           Message::Sequenced { .. } => MessageKind::Sequenced,\n",
        );
    let root = fixture(
        "protocol-rogue-sequenced",
        &[
            ("crates/broker/src/message.rs", message_full.as_str()),
            ("crates/broker/src/wire.rs", wire_with_seq.as_str()),
            ("crates/broker/src/broker.rs", broker_with_seq.as_str()),
            ("crates/net/src/shed.rs", rogue),
        ],
    );
    let findings = run(&root);
    assert_eq!(findings.len(), 1, "{findings:?}");
    let f = &findings[0];
    assert_eq!(f.rule, "protocol");
    assert_eq!(f.file, Path::new("crates/net/src/shed.rs"));
    assert_eq!(f.line, 3, "the rogue construction site");
    assert!(
        f.message
            .contains("smuggle constructs Message::Sequenced outside the reliable/wire layer"),
        "{}",
        f.message
    );
}

#[test]
fn metric_drift_is_reported_in_both_directions() {
    let tcp: &str = "pub fn render() -> String {\n\
        \x20   let name = \"xdn_fixture_requests_total\";\n\
        \x20   name.to_string()\n\
        }\n\
        #[cfg(test)]\n\
        mod tests {\n\
        \x20   #[test]\n\
        \x20   fn scrape() {\n\
        \x20       let body = \"\";\n\
        \x20       assert!(body.contains(\"xdn_fixture_ghost_total\"));\n\
        \x20   }\n\
        }\n";
    let root = fixture(
        "metric-drift",
        &[
            ("crates/net/src/tcp.rs", tcp),
            (
                "DESIGN.md",
                "## 10. Observability\n\nNothing documented here.\n",
            ),
        ],
    );
    let findings = run(&root);
    assert_eq!(findings.len(), 2, "{findings:?}");
    let asserted = findings
        .iter()
        .find(|f| f.file == Path::new("crates/net/src/tcp.rs") && f.line == 10)
        .expect("asserted-but-unregistered finding");
    assert_eq!(asserted.rule, "metric-drift");
    assert!(
        asserted
            .message
            .contains("asserts metric `xdn_fixture_ghost_total` which no code registers"),
        "{}",
        asserted.message
    );
    let undocumented = findings
        .iter()
        .find(|f| f.line == 2)
        .expect("registered-but-undocumented finding");
    assert_eq!(undocumented.rule, "metric-drift");
    assert!(
        undocumented
            .message
            .contains("`xdn_fixture_requests_total` is registered here but undocumented"),
        "{}",
        undocumented.message
    );
}

#[test]
fn waiver_comment_suppresses_a_finding() {
    let root = fixture(
        "waived-panic",
        &[(
            "crates/core/src/rtable.rs",
            "pub fn route_batch() -> u32 {\n\
             \x20   let v = vec![1];\n\
             \x20   // xtask: allow(panic-path) bounded by construction\n\
             \x20   v[0]\n\
             }\n",
        )],
    );
    let findings = run(&root);
    assert!(findings.is_empty(), "waived: {findings:?}");
}

#[test]
fn report_json_counts_fixture_shape() {
    let root = fixture(
        "report-shape",
        &[(
            "crates/core/src/rtable.rs",
            "pub fn route_batch() -> u32 {\n\
             \x20   let v = vec![1];\n\
             \x20   v[0]\n\
             }\n",
        )],
    );
    let analysis = analyze_workspace(&root).expect("analyze fixture");
    assert!(analysis.report.contains("\"schema\": 1"));
    assert!(analysis.report.contains("\"files\": 1"));
    assert!(analysis.report.contains("\"rule\": \"panic-path\""));
    assert!(
        analysis.report.contains("\"line\": 3"),
        "{}",
        analysis.report
    );
}
