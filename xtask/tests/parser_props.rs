//! Robustness properties for the `xtask` lexer and Rust parser,
//! mirroring `crates/xpath/tests/parse_props.rs`:
//!
//! 1. `lex` + `parse_file` never panic, whatever bytes they are fed.
//!    The analyzer runs over every workspace file on every CI push; a
//!    panic on a half-saved or adversarial source file would take the
//!    whole gate down. The generator mixes raw byte soup (lossy UTF-8,
//!    so replacement characters and split multi-byte sequences appear)
//!    with structured near-misses assembled from Rust fragments —
//!    truncated items, unbalanced delimiters, orphaned `=>` arms.
//! 2. Parsing is total and deterministic: the same soup parses to the
//!    same item counts twice (the fixpoint passes rely on stable
//!    symbol tables).

use proptest::prelude::*;
use std::path::PathBuf;
use xtask::lexer::lex;
use xtask::parser::parse_file;

/// Fragments adversarial inputs are assembled from: valid Rust
/// pieces, truncations, and junk — concatenations hit the parser's
/// recovery paths far more often than uniform bytes.
const FRAGMENTS: &[&str] = &[
    "fn ",
    "fn f",
    "fn f(",
    "fn f() {",
    "}",
    "{",
    "impl ",
    "impl Foo {",
    "enum ",
    "enum E { A, B(",
    "match x {",
    "=>",
    "Some(x) =>",
    "let ",
    "let g = m.lock();",
    "if let ",
    "for p in ",
    "matches!(",
    "self.",
    ".unwrap()",
    "[0]",
    "[..]",
    "\"str",
    "\"xdn_metric_total\"",
    "'a",
    "'a'",
    "::",
    "Message::Sequenced",
    "#[test]",
    "#[cfg(test)]",
    "// xtask: allow(panic-path)",
    "const ALL: [K; 2] = [",
    "()",
    ";;",
    "r#\"",
    "/* unterminated",
    "\u{fffd}",
    "\0",
];

fn arb_fragment_soup() -> impl Strategy<Value = String> {
    prop::collection::vec(0..FRAGMENTS.len(), 0..24).prop_map(|ix| {
        ix.into_iter()
            .map(|i| FRAGMENTS[i])
            .collect::<Vec<_>>()
            .join(" ")
    })
}

fn arb_byte_soup() -> impl Strategy<Value = String> {
    prop::collection::vec(any::<u8>(), 0..120)
        .prop_map(|bytes| String::from_utf8_lossy(&bytes).into_owned())
}

proptest! {
    #[test]
    fn lexer_never_panics_on_byte_soup(src in arb_byte_soup()) {
        let lexed = lex(&src);
        // Token count is bounded by input length (no runaway loops).
        prop_assert!(lexed.tokens.len() <= src.len() + 1);
    }

    #[test]
    fn parser_never_panics_on_byte_soup(src in arb_byte_soup()) {
        let _ = parse_file(PathBuf::from("soup.rs"), &src);
    }

    #[test]
    fn parser_never_panics_on_fragment_soup(src in arb_fragment_soup()) {
        let _ = parse_file(PathBuf::from("soup.rs"), &src);
    }

    #[test]
    fn parsing_is_deterministic(src in arb_fragment_soup()) {
        let a = parse_file(PathBuf::from("soup.rs"), &src);
        let b = parse_file(PathBuf::from("soup.rs"), &src);
        prop_assert_eq!(a.fns.len(), b.fns.len());
        prop_assert_eq!(a.enums.len(), b.enums.len());
        prop_assert_eq!(a.consts.len(), b.consts.len());
        let ops = |f: &xtask::ast::ParsedFile| -> usize {
            f.fns.iter().map(|d| d.body.len()).sum()
        };
        prop_assert_eq!(ops(&a), ops(&b));
    }

    #[test]
    fn valid_item_survives_junk_prefix_and_suffix(
        prefix in arb_fragment_soup(),
        suffix in arb_byte_soup(),
    ) {
        // A well-formed fn between arbitrary garbage still parses —
        // the item scanner must resynchronize on brace structure.
        let src = format!("{prefix}\nfn anchor_fn() {{ x.unwrap(); }}\n{suffix}");
        let parsed = parse_file(PathBuf::from("soup.rs"), &src);
        // The anchor may be swallowed when the prefix opens an
        // unclosed brace before it, but parsing must stay total; when
        // the anchor is found it must carry its unwrap op.
        if let Some(f) = parsed.fns.iter().find(|f| f.name == "anchor_fn") {
            prop_assert!(!f.body.is_empty());
        }
    }
}
