/root/repo/target/release/librand_chacha.rlib: /root/repo/third_party/rand/src/lib.rs /root/repo/third_party/rand_chacha/src/lib.rs
