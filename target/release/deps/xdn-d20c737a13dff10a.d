/root/repo/target/release/deps/xdn-d20c737a13dff10a.d: src/lib.rs

/root/repo/target/release/deps/libxdn-d20c737a13dff10a.rlib: src/lib.rs

/root/repo/target/release/deps/libxdn-d20c737a13dff10a.rmeta: src/lib.rs

src/lib.rs:
