/root/repo/target/release/deps/xdn_xpath-9531d465e3890f29.d: crates/xpath/src/lib.rs crates/xpath/src/ast.rs crates/xpath/src/generate.rs crates/xpath/src/matching.rs crates/xpath/src/parse.rs

/root/repo/target/release/deps/libxdn_xpath-9531d465e3890f29.rlib: crates/xpath/src/lib.rs crates/xpath/src/ast.rs crates/xpath/src/generate.rs crates/xpath/src/matching.rs crates/xpath/src/parse.rs

/root/repo/target/release/deps/libxdn_xpath-9531d465e3890f29.rmeta: crates/xpath/src/lib.rs crates/xpath/src/ast.rs crates/xpath/src/generate.rs crates/xpath/src/matching.rs crates/xpath/src/parse.rs

crates/xpath/src/lib.rs:
crates/xpath/src/ast.rs:
crates/xpath/src/generate.rs:
crates/xpath/src/matching.rs:
crates/xpath/src/parse.rs:
