/root/repo/target/release/deps/xdn_net-4298356252e2f854.d: crates/net/src/lib.rs crates/net/src/latency.rs crates/net/src/live.rs crates/net/src/metrics.rs crates/net/src/sim.rs crates/net/src/tcp.rs crates/net/src/topology.rs

/root/repo/target/release/deps/libxdn_net-4298356252e2f854.rlib: crates/net/src/lib.rs crates/net/src/latency.rs crates/net/src/live.rs crates/net/src/metrics.rs crates/net/src/sim.rs crates/net/src/tcp.rs crates/net/src/topology.rs

/root/repo/target/release/deps/libxdn_net-4298356252e2f854.rmeta: crates/net/src/lib.rs crates/net/src/latency.rs crates/net/src/live.rs crates/net/src/metrics.rs crates/net/src/sim.rs crates/net/src/tcp.rs crates/net/src/topology.rs

crates/net/src/lib.rs:
crates/net/src/latency.rs:
crates/net/src/live.rs:
crates/net/src/metrics.rs:
crates/net/src/sim.rs:
crates/net/src/tcp.rs:
crates/net/src/topology.rs:
