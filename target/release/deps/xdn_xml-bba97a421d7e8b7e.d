/root/repo/target/release/deps/xdn_xml-bba97a421d7e8b7e.d: crates/xml/src/lib.rs crates/xml/src/dtd.rs crates/xml/src/error.rs crates/xml/src/generate.rs crates/xml/src/paths.rs crates/xml/src/pretty.rs crates/xml/src/reassemble.rs crates/xml/src/tree.rs

/root/repo/target/release/deps/libxdn_xml-bba97a421d7e8b7e.rlib: crates/xml/src/lib.rs crates/xml/src/dtd.rs crates/xml/src/error.rs crates/xml/src/generate.rs crates/xml/src/paths.rs crates/xml/src/pretty.rs crates/xml/src/reassemble.rs crates/xml/src/tree.rs

/root/repo/target/release/deps/libxdn_xml-bba97a421d7e8b7e.rmeta: crates/xml/src/lib.rs crates/xml/src/dtd.rs crates/xml/src/error.rs crates/xml/src/generate.rs crates/xml/src/paths.rs crates/xml/src/pretty.rs crates/xml/src/reassemble.rs crates/xml/src/tree.rs

crates/xml/src/lib.rs:
crates/xml/src/dtd.rs:
crates/xml/src/error.rs:
crates/xml/src/generate.rs:
crates/xml/src/paths.rs:
crates/xml/src/pretty.rs:
crates/xml/src/reassemble.rs:
crates/xml/src/tree.rs:
