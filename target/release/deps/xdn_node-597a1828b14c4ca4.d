/root/repo/target/release/deps/xdn_node-597a1828b14c4ca4.d: crates/net/src/bin/xdn-node.rs

/root/repo/target/release/deps/xdn_node-597a1828b14c4ca4: crates/net/src/bin/xdn-node.rs

crates/net/src/bin/xdn-node.rs:
