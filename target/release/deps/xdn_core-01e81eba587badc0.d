/root/repo/target/release/deps/xdn_core-01e81eba587badc0.d: crates/core/src/lib.rs crates/core/src/adv.rs crates/core/src/advmatch.rs crates/core/src/cover.rs crates/core/src/merge.rs crates/core/src/rtable.rs crates/core/src/subtree.rs

/root/repo/target/release/deps/libxdn_core-01e81eba587badc0.rlib: crates/core/src/lib.rs crates/core/src/adv.rs crates/core/src/advmatch.rs crates/core/src/cover.rs crates/core/src/merge.rs crates/core/src/rtable.rs crates/core/src/subtree.rs

/root/repo/target/release/deps/libxdn_core-01e81eba587badc0.rmeta: crates/core/src/lib.rs crates/core/src/adv.rs crates/core/src/advmatch.rs crates/core/src/cover.rs crates/core/src/merge.rs crates/core/src/rtable.rs crates/core/src/subtree.rs

crates/core/src/lib.rs:
crates/core/src/adv.rs:
crates/core/src/advmatch.rs:
crates/core/src/cover.rs:
crates/core/src/merge.rs:
crates/core/src/rtable.rs:
crates/core/src/subtree.rs:
