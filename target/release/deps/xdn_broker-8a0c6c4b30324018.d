/root/repo/target/release/deps/xdn_broker-8a0c6c4b30324018.d: crates/broker/src/lib.rs crates/broker/src/broker.rs crates/broker/src/message.rs crates/broker/src/stats.rs crates/broker/src/wire.rs

/root/repo/target/release/deps/libxdn_broker-8a0c6c4b30324018.rlib: crates/broker/src/lib.rs crates/broker/src/broker.rs crates/broker/src/message.rs crates/broker/src/stats.rs crates/broker/src/wire.rs

/root/repo/target/release/deps/libxdn_broker-8a0c6c4b30324018.rmeta: crates/broker/src/lib.rs crates/broker/src/broker.rs crates/broker/src/message.rs crates/broker/src/stats.rs crates/broker/src/wire.rs

crates/broker/src/lib.rs:
crates/broker/src/broker.rs:
crates/broker/src/message.rs:
crates/broker/src/stats.rs:
crates/broker/src/wire.rs:
