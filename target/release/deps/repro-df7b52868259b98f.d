/root/repo/target/release/deps/repro-df7b52868259b98f.d: crates/bench/src/bin/repro.rs

/root/repo/target/release/deps/repro-df7b52868259b98f: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
