/root/repo/target/release/deps/xdn_workloads-6b144d5fae36625d.d: crates/workloads/src/lib.rs crates/workloads/src/analyze.rs crates/workloads/src/docs.rs crates/workloads/src/sets.rs

/root/repo/target/release/deps/libxdn_workloads-6b144d5fae36625d.rlib: crates/workloads/src/lib.rs crates/workloads/src/analyze.rs crates/workloads/src/docs.rs crates/workloads/src/sets.rs

/root/repo/target/release/deps/libxdn_workloads-6b144d5fae36625d.rmeta: crates/workloads/src/lib.rs crates/workloads/src/analyze.rs crates/workloads/src/docs.rs crates/workloads/src/sets.rs

crates/workloads/src/lib.rs:
crates/workloads/src/analyze.rs:
crates/workloads/src/docs.rs:
crates/workloads/src/sets.rs:
