/root/repo/target/release/deps/rand_chacha-0dd1b55f21d42c8a.d: third_party/rand_chacha/src/lib.rs

/root/repo/target/release/deps/librand_chacha-0dd1b55f21d42c8a.rlib: third_party/rand_chacha/src/lib.rs

/root/repo/target/release/deps/librand_chacha-0dd1b55f21d42c8a.rmeta: third_party/rand_chacha/src/lib.rs

third_party/rand_chacha/src/lib.rs:
