/root/repo/target/debug/deps/properties-fd5181b06bc67115.d: tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-fd5181b06bc67115.rmeta: tests/properties.rs Cargo.toml

tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
