/root/repo/target/debug/deps/xdn_node-6b6af6d342af24ec.d: crates/net/src/bin/xdn-node.rs

/root/repo/target/debug/deps/xdn_node-6b6af6d342af24ec: crates/net/src/bin/xdn-node.rs

crates/net/src/bin/xdn-node.rs:
