/root/repo/target/debug/deps/xdn_xpath-c0d5cdcd911b7051.d: crates/xpath/src/lib.rs crates/xpath/src/ast.rs crates/xpath/src/generate.rs crates/xpath/src/matching.rs crates/xpath/src/parse.rs

/root/repo/target/debug/deps/libxdn_xpath-c0d5cdcd911b7051.rlib: crates/xpath/src/lib.rs crates/xpath/src/ast.rs crates/xpath/src/generate.rs crates/xpath/src/matching.rs crates/xpath/src/parse.rs

/root/repo/target/debug/deps/libxdn_xpath-c0d5cdcd911b7051.rmeta: crates/xpath/src/lib.rs crates/xpath/src/ast.rs crates/xpath/src/generate.rs crates/xpath/src/matching.rs crates/xpath/src/parse.rs

crates/xpath/src/lib.rs:
crates/xpath/src/ast.rs:
crates/xpath/src/generate.rs:
crates/xpath/src/matching.rs:
crates/xpath/src/parse.rs:
