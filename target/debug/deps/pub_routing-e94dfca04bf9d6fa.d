/root/repo/target/debug/deps/pub_routing-e94dfca04bf9d6fa.d: crates/bench/benches/pub_routing.rs Cargo.toml

/root/repo/target/debug/deps/libpub_routing-e94dfca04bf9d6fa.rmeta: crates/bench/benches/pub_routing.rs Cargo.toml

crates/bench/benches/pub_routing.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
