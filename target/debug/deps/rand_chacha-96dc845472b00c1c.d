/root/repo/target/debug/deps/rand_chacha-96dc845472b00c1c.d: third_party/rand_chacha/src/lib.rs

/root/repo/target/debug/deps/librand_chacha-96dc845472b00c1c.rlib: third_party/rand_chacha/src/lib.rs

/root/repo/target/debug/deps/librand_chacha-96dc845472b00c1c.rmeta: third_party/rand_chacha/src/lib.rs

third_party/rand_chacha/src/lib.rs:
