/root/repo/target/debug/deps/merging-338da7ee33182fc6.d: crates/bench/benches/merging.rs Cargo.toml

/root/repo/target/debug/deps/libmerging-338da7ee33182fc6.rmeta: crates/bench/benches/merging.rs Cargo.toml

crates/bench/benches/merging.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
