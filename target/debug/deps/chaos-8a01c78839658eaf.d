/root/repo/target/debug/deps/chaos-8a01c78839658eaf.d: tests/chaos.rs

/root/repo/target/debug/deps/chaos-8a01c78839658eaf: tests/chaos.rs

tests/chaos.rs:
