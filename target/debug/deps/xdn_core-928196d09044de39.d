/root/repo/target/debug/deps/xdn_core-928196d09044de39.d: crates/core/src/lib.rs crates/core/src/adv.rs crates/core/src/advmatch.rs crates/core/src/cover.rs crates/core/src/merge.rs crates/core/src/rtable.rs crates/core/src/subtree.rs

/root/repo/target/debug/deps/libxdn_core-928196d09044de39.rlib: crates/core/src/lib.rs crates/core/src/adv.rs crates/core/src/advmatch.rs crates/core/src/cover.rs crates/core/src/merge.rs crates/core/src/rtable.rs crates/core/src/subtree.rs

/root/repo/target/debug/deps/libxdn_core-928196d09044de39.rmeta: crates/core/src/lib.rs crates/core/src/adv.rs crates/core/src/advmatch.rs crates/core/src/cover.rs crates/core/src/merge.rs crates/core/src/rtable.rs crates/core/src/subtree.rs

crates/core/src/lib.rs:
crates/core/src/adv.rs:
crates/core/src/advmatch.rs:
crates/core/src/cover.rs:
crates/core/src/merge.rs:
crates/core/src/rtable.rs:
crates/core/src/subtree.rs:
