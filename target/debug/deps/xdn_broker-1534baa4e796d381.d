/root/repo/target/debug/deps/xdn_broker-1534baa4e796d381.d: crates/broker/src/lib.rs crates/broker/src/broker.rs crates/broker/src/message.rs crates/broker/src/stats.rs crates/broker/src/wire.rs Cargo.toml

/root/repo/target/debug/deps/libxdn_broker-1534baa4e796d381.rmeta: crates/broker/src/lib.rs crates/broker/src/broker.rs crates/broker/src/message.rs crates/broker/src/stats.rs crates/broker/src/wire.rs Cargo.toml

crates/broker/src/lib.rs:
crates/broker/src/broker.rs:
crates/broker/src/message.rs:
crates/broker/src/stats.rs:
crates/broker/src/wire.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
