/root/repo/target/debug/deps/xdn-0bdc23e0e15f240f.d: src/lib.rs

/root/repo/target/debug/deps/libxdn-0bdc23e0e15f240f.rlib: src/lib.rs

/root/repo/target/debug/deps/libxdn-0bdc23e0e15f240f.rmeta: src/lib.rs

src/lib.rs:
