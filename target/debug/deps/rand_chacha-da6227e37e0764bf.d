/root/repo/target/debug/deps/rand_chacha-da6227e37e0764bf.d: third_party/rand_chacha/src/lib.rs

/root/repo/target/debug/deps/rand_chacha-da6227e37e0764bf: third_party/rand_chacha/src/lib.rs

third_party/rand_chacha/src/lib.rs:
