/root/repo/target/debug/deps/xdn-40d36715a44c02fd.d: src/lib.rs

/root/repo/target/debug/deps/xdn-40d36715a44c02fd: src/lib.rs

src/lib.rs:
