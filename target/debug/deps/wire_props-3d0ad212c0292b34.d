/root/repo/target/debug/deps/wire_props-3d0ad212c0292b34.d: crates/broker/tests/wire_props.rs Cargo.toml

/root/repo/target/debug/deps/libwire_props-3d0ad212c0292b34.rmeta: crates/broker/tests/wire_props.rs Cargo.toml

crates/broker/tests/wire_props.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
