/root/repo/target/debug/deps/table_equivalence-70688221cb225670.d: tests/table_equivalence.rs Cargo.toml

/root/repo/target/debug/deps/libtable_equivalence-70688221cb225670.rmeta: tests/table_equivalence.rs Cargo.toml

tests/table_equivalence.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
