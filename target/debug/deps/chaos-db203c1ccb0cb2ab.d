/root/repo/target/debug/deps/chaos-db203c1ccb0cb2ab.d: tests/chaos.rs Cargo.toml

/root/repo/target/debug/deps/libchaos-db203c1ccb0cb2ab.rmeta: tests/chaos.rs Cargo.toml

tests/chaos.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
