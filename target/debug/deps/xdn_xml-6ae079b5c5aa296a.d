/root/repo/target/debug/deps/xdn_xml-6ae079b5c5aa296a.d: crates/xml/src/lib.rs crates/xml/src/dtd.rs crates/xml/src/error.rs crates/xml/src/generate.rs crates/xml/src/paths.rs crates/xml/src/pretty.rs crates/xml/src/reassemble.rs crates/xml/src/tree.rs

/root/repo/target/debug/deps/libxdn_xml-6ae079b5c5aa296a.rlib: crates/xml/src/lib.rs crates/xml/src/dtd.rs crates/xml/src/error.rs crates/xml/src/generate.rs crates/xml/src/paths.rs crates/xml/src/pretty.rs crates/xml/src/reassemble.rs crates/xml/src/tree.rs

/root/repo/target/debug/deps/libxdn_xml-6ae079b5c5aa296a.rmeta: crates/xml/src/lib.rs crates/xml/src/dtd.rs crates/xml/src/error.rs crates/xml/src/generate.rs crates/xml/src/paths.rs crates/xml/src/pretty.rs crates/xml/src/reassemble.rs crates/xml/src/tree.rs

crates/xml/src/lib.rs:
crates/xml/src/dtd.rs:
crates/xml/src/error.rs:
crates/xml/src/generate.rs:
crates/xml/src/paths.rs:
crates/xml/src/pretty.rs:
crates/xml/src/reassemble.rs:
crates/xml/src/tree.rs:
