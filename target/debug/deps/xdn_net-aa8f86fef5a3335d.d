/root/repo/target/debug/deps/xdn_net-aa8f86fef5a3335d.d: crates/net/src/lib.rs crates/net/src/latency.rs crates/net/src/live.rs crates/net/src/metrics.rs crates/net/src/sim.rs crates/net/src/tcp.rs crates/net/src/topology.rs

/root/repo/target/debug/deps/xdn_net-aa8f86fef5a3335d: crates/net/src/lib.rs crates/net/src/latency.rs crates/net/src/live.rs crates/net/src/metrics.rs crates/net/src/sim.rs crates/net/src/tcp.rs crates/net/src/topology.rs

crates/net/src/lib.rs:
crates/net/src/latency.rs:
crates/net/src/live.rs:
crates/net/src/metrics.rs:
crates/net/src/sim.rs:
crates/net/src/tcp.rs:
crates/net/src/topology.rs:
