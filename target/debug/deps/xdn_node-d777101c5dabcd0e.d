/root/repo/target/debug/deps/xdn_node-d777101c5dabcd0e.d: crates/net/src/bin/xdn-node.rs Cargo.toml

/root/repo/target/debug/deps/libxdn_node-d777101c5dabcd0e.rmeta: crates/net/src/bin/xdn-node.rs Cargo.toml

crates/net/src/bin/xdn-node.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
