/root/repo/target/debug/deps/subtree_props-429f5d56bd92204c.d: crates/core/tests/subtree_props.rs

/root/repo/target/debug/deps/subtree_props-429f5d56bd92204c: crates/core/tests/subtree_props.rs

crates/core/tests/subtree_props.rs:
