/root/repo/target/debug/deps/rand_chacha-d8dcc31ec680a350.d: third_party/rand_chacha/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/librand_chacha-d8dcc31ec680a350.rmeta: third_party/rand_chacha/src/lib.rs Cargo.toml

third_party/rand_chacha/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
