/root/repo/target/debug/deps/xdn_workloads-972ef2bb3df71082.d: crates/workloads/src/lib.rs crates/workloads/src/analyze.rs crates/workloads/src/docs.rs crates/workloads/src/sets.rs

/root/repo/target/debug/deps/xdn_workloads-972ef2bb3df71082: crates/workloads/src/lib.rs crates/workloads/src/analyze.rs crates/workloads/src/docs.rs crates/workloads/src/sets.rs

crates/workloads/src/lib.rs:
crates/workloads/src/analyze.rs:
crates/workloads/src/docs.rs:
crates/workloads/src/sets.rs:
