/root/repo/target/debug/deps/predicates-72177a4229cf9fb3.d: tests/predicates.rs

/root/repo/target/debug/deps/predicates-72177a4229cf9fb3: tests/predicates.rs

tests/predicates.rs:
