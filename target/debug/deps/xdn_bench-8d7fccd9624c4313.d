/root/repo/target/debug/deps/xdn_bench-8d7fccd9624c4313.d: crates/bench/src/lib.rs crates/bench/src/delay.rs crates/bench/src/fig6.rs crates/bench/src/fig7.rs crates/bench/src/fig8.rs crates/bench/src/fig9.rs crates/bench/src/report.rs crates/bench/src/scale.rs crates/bench/src/table1.rs crates/bench/src/traffic.rs

/root/repo/target/debug/deps/libxdn_bench-8d7fccd9624c4313.rlib: crates/bench/src/lib.rs crates/bench/src/delay.rs crates/bench/src/fig6.rs crates/bench/src/fig7.rs crates/bench/src/fig8.rs crates/bench/src/fig9.rs crates/bench/src/report.rs crates/bench/src/scale.rs crates/bench/src/table1.rs crates/bench/src/traffic.rs

/root/repo/target/debug/deps/libxdn_bench-8d7fccd9624c4313.rmeta: crates/bench/src/lib.rs crates/bench/src/delay.rs crates/bench/src/fig6.rs crates/bench/src/fig7.rs crates/bench/src/fig8.rs crates/bench/src/fig9.rs crates/bench/src/report.rs crates/bench/src/scale.rs crates/bench/src/table1.rs crates/bench/src/traffic.rs

crates/bench/src/lib.rs:
crates/bench/src/delay.rs:
crates/bench/src/fig6.rs:
crates/bench/src/fig7.rs:
crates/bench/src/fig8.rs:
crates/bench/src/fig9.rs:
crates/bench/src/report.rs:
crates/bench/src/scale.rs:
crates/bench/src/table1.rs:
crates/bench/src/traffic.rs:
