/root/repo/target/debug/deps/xdn_xpath-a42142e4c956a8ef.d: crates/xpath/src/lib.rs crates/xpath/src/ast.rs crates/xpath/src/generate.rs crates/xpath/src/matching.rs crates/xpath/src/parse.rs Cargo.toml

/root/repo/target/debug/deps/libxdn_xpath-a42142e4c956a8ef.rmeta: crates/xpath/src/lib.rs crates/xpath/src/ast.rs crates/xpath/src/generate.rs crates/xpath/src/matching.rs crates/xpath/src/parse.rs Cargo.toml

crates/xpath/src/lib.rs:
crates/xpath/src/ast.rs:
crates/xpath/src/generate.rs:
crates/xpath/src/matching.rs:
crates/xpath/src/parse.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
