/root/repo/target/debug/deps/rts-f1deb8b8d20c29c3.d: crates/bench/benches/rts.rs Cargo.toml

/root/repo/target/debug/deps/librts-f1deb8b8d20c29c3.rmeta: crates/bench/benches/rts.rs Cargo.toml

crates/bench/benches/rts.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
