/root/repo/target/debug/deps/xdn_node-af4ddde3fad44af7.d: crates/net/src/bin/xdn-node.rs Cargo.toml

/root/repo/target/debug/deps/libxdn_node-af4ddde3fad44af7.rmeta: crates/net/src/bin/xdn-node.rs Cargo.toml

crates/net/src/bin/xdn-node.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
