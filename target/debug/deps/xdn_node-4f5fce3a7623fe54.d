/root/repo/target/debug/deps/xdn_node-4f5fce3a7623fe54.d: crates/net/src/bin/xdn-node.rs

/root/repo/target/debug/deps/xdn_node-4f5fce3a7623fe54: crates/net/src/bin/xdn-node.rs

crates/net/src/bin/xdn-node.rs:
