/root/repo/target/debug/deps/xdn_core-ec29927ddfde7ed6.d: crates/core/src/lib.rs crates/core/src/adv.rs crates/core/src/advmatch.rs crates/core/src/cover.rs crates/core/src/merge.rs crates/core/src/rtable.rs crates/core/src/subtree.rs Cargo.toml

/root/repo/target/debug/deps/libxdn_core-ec29927ddfde7ed6.rmeta: crates/core/src/lib.rs crates/core/src/adv.rs crates/core/src/advmatch.rs crates/core/src/cover.rs crates/core/src/merge.rs crates/core/src/rtable.rs crates/core/src/subtree.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/adv.rs:
crates/core/src/advmatch.rs:
crates/core/src/cover.rs:
crates/core/src/merge.rs:
crates/core/src/rtable.rs:
crates/core/src/subtree.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
