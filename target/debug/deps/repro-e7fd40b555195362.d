/root/repo/target/debug/deps/repro-e7fd40b555195362.d: crates/bench/src/bin/repro.rs

/root/repo/target/debug/deps/repro-e7fd40b555195362: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
