/root/repo/target/debug/deps/predicates-febffffecfd1b80f.d: tests/predicates.rs Cargo.toml

/root/repo/target/debug/deps/libpredicates-febffffecfd1b80f.rmeta: tests/predicates.rs Cargo.toml

tests/predicates.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
