/root/repo/target/debug/deps/table_equivalence-6430bd8ce0381040.d: tests/table_equivalence.rs

/root/repo/target/debug/deps/table_equivalence-6430bd8ce0381040: tests/table_equivalence.rs

tests/table_equivalence.rs:
