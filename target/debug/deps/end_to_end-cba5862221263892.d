/root/repo/target/debug/deps/end_to_end-cba5862221263892.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-cba5862221263892: tests/end_to_end.rs

tests/end_to_end.rs:
