/root/repo/target/debug/deps/xdn-7330c27bb1e3c5fa.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libxdn-7330c27bb1e3c5fa.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
