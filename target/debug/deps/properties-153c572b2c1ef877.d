/root/repo/target/debug/deps/properties-153c572b2c1ef877.d: tests/properties.rs

/root/repo/target/debug/deps/properties-153c572b2c1ef877: tests/properties.rs

tests/properties.rs:
