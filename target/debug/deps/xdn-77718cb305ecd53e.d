/root/repo/target/debug/deps/xdn-77718cb305ecd53e.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libxdn-77718cb305ecd53e.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
