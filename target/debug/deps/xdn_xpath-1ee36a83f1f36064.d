/root/repo/target/debug/deps/xdn_xpath-1ee36a83f1f36064.d: crates/xpath/src/lib.rs crates/xpath/src/ast.rs crates/xpath/src/generate.rs crates/xpath/src/matching.rs crates/xpath/src/parse.rs

/root/repo/target/debug/deps/xdn_xpath-1ee36a83f1f36064: crates/xpath/src/lib.rs crates/xpath/src/ast.rs crates/xpath/src/generate.rs crates/xpath/src/matching.rs crates/xpath/src/parse.rs

crates/xpath/src/lib.rs:
crates/xpath/src/ast.rs:
crates/xpath/src/generate.rs:
crates/xpath/src/matching.rs:
crates/xpath/src/parse.rs:
