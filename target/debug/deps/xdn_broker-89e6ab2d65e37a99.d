/root/repo/target/debug/deps/xdn_broker-89e6ab2d65e37a99.d: crates/broker/src/lib.rs crates/broker/src/broker.rs crates/broker/src/message.rs crates/broker/src/stats.rs crates/broker/src/wire.rs

/root/repo/target/debug/deps/libxdn_broker-89e6ab2d65e37a99.rlib: crates/broker/src/lib.rs crates/broker/src/broker.rs crates/broker/src/message.rs crates/broker/src/stats.rs crates/broker/src/wire.rs

/root/repo/target/debug/deps/libxdn_broker-89e6ab2d65e37a99.rmeta: crates/broker/src/lib.rs crates/broker/src/broker.rs crates/broker/src/message.rs crates/broker/src/stats.rs crates/broker/src/wire.rs

crates/broker/src/lib.rs:
crates/broker/src/broker.rs:
crates/broker/src/message.rs:
crates/broker/src/stats.rs:
crates/broker/src/wire.rs:
