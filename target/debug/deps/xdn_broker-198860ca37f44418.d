/root/repo/target/debug/deps/xdn_broker-198860ca37f44418.d: crates/broker/src/lib.rs crates/broker/src/broker.rs crates/broker/src/message.rs crates/broker/src/stats.rs crates/broker/src/wire.rs

/root/repo/target/debug/deps/xdn_broker-198860ca37f44418: crates/broker/src/lib.rs crates/broker/src/broker.rs crates/broker/src/message.rs crates/broker/src/stats.rs crates/broker/src/wire.rs

crates/broker/src/lib.rs:
crates/broker/src/broker.rs:
crates/broker/src/message.rs:
crates/broker/src/stats.rs:
crates/broker/src/wire.rs:
