/root/repo/target/debug/deps/xdn_workloads-3ebaaac4293b94da.d: crates/workloads/src/lib.rs crates/workloads/src/analyze.rs crates/workloads/src/docs.rs crates/workloads/src/sets.rs Cargo.toml

/root/repo/target/debug/deps/libxdn_workloads-3ebaaac4293b94da.rmeta: crates/workloads/src/lib.rs crates/workloads/src/analyze.rs crates/workloads/src/docs.rs crates/workloads/src/sets.rs Cargo.toml

crates/workloads/src/lib.rs:
crates/workloads/src/analyze.rs:
crates/workloads/src/docs.rs:
crates/workloads/src/sets.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
