/root/repo/target/debug/deps/end_to_end-d735b0e4b2f15a45.d: tests/end_to_end.rs Cargo.toml

/root/repo/target/debug/deps/libend_to_end-d735b0e4b2f15a45.rmeta: tests/end_to_end.rs Cargo.toml

tests/end_to_end.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
