/root/repo/target/debug/deps/subtree_props-acc20008cd591462.d: crates/core/tests/subtree_props.rs Cargo.toml

/root/repo/target/debug/deps/libsubtree_props-acc20008cd591462.rmeta: crates/core/tests/subtree_props.rs Cargo.toml

crates/core/tests/subtree_props.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
