/root/repo/target/debug/deps/xdn_workloads-4eaeb4adc9c4e83e.d: crates/workloads/src/lib.rs crates/workloads/src/analyze.rs crates/workloads/src/docs.rs crates/workloads/src/sets.rs Cargo.toml

/root/repo/target/debug/deps/libxdn_workloads-4eaeb4adc9c4e83e.rmeta: crates/workloads/src/lib.rs crates/workloads/src/analyze.rs crates/workloads/src/docs.rs crates/workloads/src/sets.rs Cargo.toml

crates/workloads/src/lib.rs:
crates/workloads/src/analyze.rs:
crates/workloads/src/docs.rs:
crates/workloads/src/sets.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
