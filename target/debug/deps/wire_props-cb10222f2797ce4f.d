/root/repo/target/debug/deps/wire_props-cb10222f2797ce4f.d: crates/broker/tests/wire_props.rs

/root/repo/target/debug/deps/wire_props-cb10222f2797ce4f: crates/broker/tests/wire_props.rs

crates/broker/tests/wire_props.rs:
