/root/repo/target/debug/deps/repro-802b1a6df4e656d4.d: crates/bench/src/bin/repro.rs Cargo.toml

/root/repo/target/debug/deps/librepro-802b1a6df4e656d4.rmeta: crates/bench/src/bin/repro.rs Cargo.toml

crates/bench/src/bin/repro.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
