/root/repo/target/debug/deps/xdn_net-0ac2277fed252546.d: crates/net/src/lib.rs crates/net/src/latency.rs crates/net/src/live.rs crates/net/src/metrics.rs crates/net/src/sim.rs crates/net/src/tcp.rs crates/net/src/topology.rs

/root/repo/target/debug/deps/libxdn_net-0ac2277fed252546.rlib: crates/net/src/lib.rs crates/net/src/latency.rs crates/net/src/live.rs crates/net/src/metrics.rs crates/net/src/sim.rs crates/net/src/tcp.rs crates/net/src/topology.rs

/root/repo/target/debug/deps/libxdn_net-0ac2277fed252546.rmeta: crates/net/src/lib.rs crates/net/src/latency.rs crates/net/src/live.rs crates/net/src/metrics.rs crates/net/src/sim.rs crates/net/src/tcp.rs crates/net/src/topology.rs

crates/net/src/lib.rs:
crates/net/src/latency.rs:
crates/net/src/live.rs:
crates/net/src/metrics.rs:
crates/net/src/sim.rs:
crates/net/src/tcp.rs:
crates/net/src/topology.rs:
