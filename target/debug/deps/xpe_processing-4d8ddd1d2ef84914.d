/root/repo/target/debug/deps/xpe_processing-4d8ddd1d2ef84914.d: crates/bench/benches/xpe_processing.rs Cargo.toml

/root/repo/target/debug/deps/libxpe_processing-4d8ddd1d2ef84914.rmeta: crates/bench/benches/xpe_processing.rs Cargo.toml

crates/bench/benches/xpe_processing.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
