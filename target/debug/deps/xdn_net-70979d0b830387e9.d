/root/repo/target/debug/deps/xdn_net-70979d0b830387e9.d: crates/net/src/lib.rs crates/net/src/latency.rs crates/net/src/live.rs crates/net/src/metrics.rs crates/net/src/sim.rs crates/net/src/tcp.rs crates/net/src/topology.rs Cargo.toml

/root/repo/target/debug/deps/libxdn_net-70979d0b830387e9.rmeta: crates/net/src/lib.rs crates/net/src/latency.rs crates/net/src/live.rs crates/net/src/metrics.rs crates/net/src/sim.rs crates/net/src/tcp.rs crates/net/src/topology.rs Cargo.toml

crates/net/src/lib.rs:
crates/net/src/latency.rs:
crates/net/src/live.rs:
crates/net/src/metrics.rs:
crates/net/src/sim.rs:
crates/net/src/tcp.rs:
crates/net/src/topology.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
