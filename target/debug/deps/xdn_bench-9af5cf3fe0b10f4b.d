/root/repo/target/debug/deps/xdn_bench-9af5cf3fe0b10f4b.d: crates/bench/src/lib.rs crates/bench/src/delay.rs crates/bench/src/fig6.rs crates/bench/src/fig7.rs crates/bench/src/fig8.rs crates/bench/src/fig9.rs crates/bench/src/report.rs crates/bench/src/scale.rs crates/bench/src/table1.rs crates/bench/src/traffic.rs Cargo.toml

/root/repo/target/debug/deps/libxdn_bench-9af5cf3fe0b10f4b.rmeta: crates/bench/src/lib.rs crates/bench/src/delay.rs crates/bench/src/fig6.rs crates/bench/src/fig7.rs crates/bench/src/fig8.rs crates/bench/src/fig9.rs crates/bench/src/report.rs crates/bench/src/scale.rs crates/bench/src/table1.rs crates/bench/src/traffic.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/delay.rs:
crates/bench/src/fig6.rs:
crates/bench/src/fig7.rs:
crates/bench/src/fig8.rs:
crates/bench/src/fig9.rs:
crates/bench/src/report.rs:
crates/bench/src/scale.rs:
crates/bench/src/table1.rs:
crates/bench/src/traffic.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
