/root/repo/target/debug/deps/xdn_broker-822839a7d6f55a1f.d: crates/broker/src/lib.rs crates/broker/src/broker.rs crates/broker/src/message.rs crates/broker/src/stats.rs crates/broker/src/wire.rs Cargo.toml

/root/repo/target/debug/deps/libxdn_broker-822839a7d6f55a1f.rmeta: crates/broker/src/lib.rs crates/broker/src/broker.rs crates/broker/src/message.rs crates/broker/src/stats.rs crates/broker/src/wire.rs Cargo.toml

crates/broker/src/lib.rs:
crates/broker/src/broker.rs:
crates/broker/src/message.rs:
crates/broker/src/stats.rs:
crates/broker/src/wire.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
