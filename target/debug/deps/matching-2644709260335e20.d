/root/repo/target/debug/deps/matching-2644709260335e20.d: crates/bench/benches/matching.rs Cargo.toml

/root/repo/target/debug/deps/libmatching-2644709260335e20.rmeta: crates/bench/benches/matching.rs Cargo.toml

crates/bench/benches/matching.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
