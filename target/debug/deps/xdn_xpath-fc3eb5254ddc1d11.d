/root/repo/target/debug/deps/xdn_xpath-fc3eb5254ddc1d11.d: crates/xpath/src/lib.rs crates/xpath/src/ast.rs crates/xpath/src/generate.rs crates/xpath/src/matching.rs crates/xpath/src/parse.rs Cargo.toml

/root/repo/target/debug/deps/libxdn_xpath-fc3eb5254ddc1d11.rmeta: crates/xpath/src/lib.rs crates/xpath/src/ast.rs crates/xpath/src/generate.rs crates/xpath/src/matching.rs crates/xpath/src/parse.rs Cargo.toml

crates/xpath/src/lib.rs:
crates/xpath/src/ast.rs:
crates/xpath/src/generate.rs:
crates/xpath/src/matching.rs:
crates/xpath/src/parse.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
