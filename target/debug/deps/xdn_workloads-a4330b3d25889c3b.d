/root/repo/target/debug/deps/xdn_workloads-a4330b3d25889c3b.d: crates/workloads/src/lib.rs crates/workloads/src/analyze.rs crates/workloads/src/docs.rs crates/workloads/src/sets.rs

/root/repo/target/debug/deps/libxdn_workloads-a4330b3d25889c3b.rlib: crates/workloads/src/lib.rs crates/workloads/src/analyze.rs crates/workloads/src/docs.rs crates/workloads/src/sets.rs

/root/repo/target/debug/deps/libxdn_workloads-a4330b3d25889c3b.rmeta: crates/workloads/src/lib.rs crates/workloads/src/analyze.rs crates/workloads/src/docs.rs crates/workloads/src/sets.rs

crates/workloads/src/lib.rs:
crates/workloads/src/analyze.rs:
crates/workloads/src/docs.rs:
crates/workloads/src/sets.rs:
