/root/repo/target/debug/deps/xdn_xml-c085a10781b8729e.d: crates/xml/src/lib.rs crates/xml/src/dtd.rs crates/xml/src/error.rs crates/xml/src/generate.rs crates/xml/src/paths.rs crates/xml/src/pretty.rs crates/xml/src/reassemble.rs crates/xml/src/tree.rs Cargo.toml

/root/repo/target/debug/deps/libxdn_xml-c085a10781b8729e.rmeta: crates/xml/src/lib.rs crates/xml/src/dtd.rs crates/xml/src/error.rs crates/xml/src/generate.rs crates/xml/src/paths.rs crates/xml/src/pretty.rs crates/xml/src/reassemble.rs crates/xml/src/tree.rs Cargo.toml

crates/xml/src/lib.rs:
crates/xml/src/dtd.rs:
crates/xml/src/error.rs:
crates/xml/src/generate.rs:
crates/xml/src/paths.rs:
crates/xml/src/pretty.rs:
crates/xml/src/reassemble.rs:
crates/xml/src/tree.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
