/root/repo/target/debug/deps/xdn_xml-48f0d19a5b0a69bf.d: crates/xml/src/lib.rs crates/xml/src/dtd.rs crates/xml/src/error.rs crates/xml/src/generate.rs crates/xml/src/paths.rs crates/xml/src/pretty.rs crates/xml/src/reassemble.rs crates/xml/src/tree.rs Cargo.toml

/root/repo/target/debug/deps/libxdn_xml-48f0d19a5b0a69bf.rmeta: crates/xml/src/lib.rs crates/xml/src/dtd.rs crates/xml/src/error.rs crates/xml/src/generate.rs crates/xml/src/paths.rs crates/xml/src/pretty.rs crates/xml/src/reassemble.rs crates/xml/src/tree.rs Cargo.toml

crates/xml/src/lib.rs:
crates/xml/src/dtd.rs:
crates/xml/src/error.rs:
crates/xml/src/generate.rs:
crates/xml/src/paths.rs:
crates/xml/src/pretty.rs:
crates/xml/src/reassemble.rs:
crates/xml/src/tree.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
