/root/repo/target/debug/deps/xdn_core-526a36bd4edf2cad.d: crates/core/src/lib.rs crates/core/src/adv.rs crates/core/src/advmatch.rs crates/core/src/cover.rs crates/core/src/merge.rs crates/core/src/rtable.rs crates/core/src/subtree.rs

/root/repo/target/debug/deps/xdn_core-526a36bd4edf2cad: crates/core/src/lib.rs crates/core/src/adv.rs crates/core/src/advmatch.rs crates/core/src/cover.rs crates/core/src/merge.rs crates/core/src/rtable.rs crates/core/src/subtree.rs

crates/core/src/lib.rs:
crates/core/src/adv.rs:
crates/core/src/advmatch.rs:
crates/core/src/cover.rs:
crates/core/src/merge.rs:
crates/core/src/rtable.rs:
crates/core/src/subtree.rs:
