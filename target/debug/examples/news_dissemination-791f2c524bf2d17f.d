/root/repo/target/debug/examples/news_dissemination-791f2c524bf2d17f.d: examples/news_dissemination.rs Cargo.toml

/root/repo/target/debug/examples/libnews_dissemination-791f2c524bf2d17f.rmeta: examples/news_dissemination.rs Cargo.toml

examples/news_dissemination.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
