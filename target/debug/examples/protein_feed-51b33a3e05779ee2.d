/root/repo/target/debug/examples/protein_feed-51b33a3e05779ee2.d: examples/protein_feed.rs Cargo.toml

/root/repo/target/debug/examples/libprotein_feed-51b33a3e05779ee2.rmeta: examples/protein_feed.rs Cargo.toml

examples/protein_feed.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
