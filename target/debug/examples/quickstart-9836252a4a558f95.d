/root/repo/target/debug/examples/quickstart-9836252a4a558f95.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-9836252a4a558f95: examples/quickstart.rs

examples/quickstart.rs:
