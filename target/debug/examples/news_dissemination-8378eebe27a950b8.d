/root/repo/target/debug/examples/news_dissemination-8378eebe27a950b8.d: examples/news_dissemination.rs

/root/repo/target/debug/examples/news_dissemination-8378eebe27a950b8: examples/news_dissemination.rs

examples/news_dissemination.rs:
