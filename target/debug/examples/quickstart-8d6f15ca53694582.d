/root/repo/target/debug/examples/quickstart-8d6f15ca53694582.d: examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-8d6f15ca53694582.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
