/root/repo/target/debug/examples/insurance_claims-648a392228882c8e.d: examples/insurance_claims.rs

/root/repo/target/debug/examples/insurance_claims-648a392228882c8e: examples/insurance_claims.rs

examples/insurance_claims.rs:
