/root/repo/target/debug/examples/insurance_claims-1ddae65825e5d26a.d: examples/insurance_claims.rs Cargo.toml

/root/repo/target/debug/examples/libinsurance_claims-1ddae65825e5d26a.rmeta: examples/insurance_claims.rs Cargo.toml

examples/insurance_claims.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
