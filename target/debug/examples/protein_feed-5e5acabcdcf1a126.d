/root/repo/target/debug/examples/protein_feed-5e5acabcdcf1a126.d: examples/protein_feed.rs

/root/repo/target/debug/examples/protein_feed-5e5acabcdcf1a126: examples/protein_feed.rs

examples/protein_feed.rs:
