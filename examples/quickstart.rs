//! Quickstart: a three-broker dissemination network in ~40 lines.
//!
//! A publisher announces what it will publish (derived from its DTD),
//! a subscriber registers an XPath expression, and a published XML
//! document is routed across the overlay to the subscriber.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use xdn::broker::{MessageKind, RoutingConfig};
use xdn::core::adv::{derive_advertisements, DeriveOptions};
use xdn::net::latency::ClusterLan;
use xdn::net::topology::chain;
use xdn::xml::dtd::Dtd;
use xdn::xml::parse_document;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A chain of three content-based XML routers.
    let mut net = chain(
        3,
        RoutingConfig::builder()
            .advertisements(true)
            .covering(true)
            .build(),
        ClusterLan::default(),
    );
    net.set_record_deliveries(true);
    let broker_ids = net.broker_ids();
    let publisher = net.attach_client(broker_ids[0]);
    let subscriber = net.attach_client(broker_ids[2]);

    // The publisher's DTD describes stock quotes; its advertisements
    // are derived automatically and flooded through the overlay.
    let dtd = Dtd::parse(
        "<!ELEMENT quotes (exchange+)>\n\
         <!ELEMENT exchange (stock*)>\n\
         <!ELEMENT stock (symbol, price, volume?)>\n\
         <!ELEMENT symbol (#PCDATA)>\n\
         <!ELEMENT price (#PCDATA)>\n\
         <!ELEMENT volume (#PCDATA)>",
    )?;
    let advertisements = derive_advertisements(&dtd, &DeriveOptions::default());
    println!(
        "publisher advertises {} path patterns, e.g. {}",
        advertisements.len(),
        advertisements[0]
    );
    net.advertise_all(publisher, advertisements);
    net.run();

    // The subscriber asks for any stock price, wherever it appears.
    net.subscribe(subscriber, "/quotes/*/stock/price".parse()?);
    net.run();

    // Publish a document; it is decomposed into root-to-leaf paths and
    // routed by content only.
    let doc = parse_document(
        "<quotes><exchange><stock><symbol>XDN</symbol><price>42</price></stock></exchange></quotes>",
    )?;
    net.publish_document(publisher, &doc);
    net.run();

    for n in &net.metrics().notifications {
        println!(
            "client {:?} received {:?} after {:?} over {} broker hops",
            n.client, n.doc, n.delay, n.hops
        );
    }
    assert_eq!(net.metrics().notifications.len(), 1);

    // Path decomposition is transparent: the subscriber reassembles the
    // delivered paths back into a document.
    let delivered: Vec<_> = net
        .metrics()
        .delivered_paths
        .iter()
        .filter(|(c, _)| *c == subscriber)
        .map(|(_, p)| p.clone())
        .collect();
    let rebuilt = xdn::xml::reassemble::reassemble(&delivered)?;
    println!("subscriber reassembled: {}", rebuilt.to_xml_string());

    println!(
        "total broker messages: {} (advertise={}, subscribe={}, publish={})",
        net.metrics().network_traffic(),
        net.metrics().traffic_of(MessageKind::Advertise),
        net.metrics().traffic_of(MessageKind::Subscribe),
        net.metrics().traffic_of(MessageKind::Publish),
    );
    Ok(())
}
