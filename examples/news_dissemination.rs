//! News dissemination over the NITF-like DTD: shows how covering and
//! merging compact a broker's routing table as thousands of reader
//! profiles register, and what that does to publication routing time.
//!
//! ```sh
//! cargo run --release --example news_dissemination
//! ```

use rand::SeedableRng;
use std::time::Instant;
use xdn::core::merge::MergeConfig;
use xdn::core::rtable::{FlatPrt, Prt, PublicationRouter, SubId};
use xdn::workloads::{docs, nitf_dtd, sets, universe};

fn main() {
    let dtd = nitf_dtd();
    let n = 5_000;

    // Reader profiles: XPath expressions over news documents.
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(7);
    let profiles =
        xdn::xpath::generate::generate_distinct_xpes(&dtd, n, &sets::set_a_config(), &mut rng);
    println!(
        "{} distinct reader profiles (e.g. {})",
        profiles.len(),
        profiles[0]
    );

    // A flat routing table vs the covering subscription tree.
    let mut flat: FlatPrt<u32> = FlatPrt::new();
    let mut tree: Prt<u32> = Prt::new();
    for (i, p) in profiles.iter().enumerate() {
        flat.insert(SubId(i as u64), p.clone(), i as u32);
        tree.insert(SubId(i as u64), p.clone(), i as u32);
    }
    println!("flat routing table: {} entries", flat.len());
    println!(
        "covering tree:      {} stored, {} effective ({}% reduction)",
        tree.len(),
        tree.effective_size(),
        100 - 100 * tree.effective_size() / tree.len().max(1),
    );

    // Merging compacts further (perfect mergers only — no false
    // positives).
    let u = universe(&dtd);
    let mut seq = 1_000_000;
    tree.apply_merging(&u, &MergeConfig::default(), || {
        seq += 1;
        SubId(seq)
    });
    println!("after perfect merging: {} effective", tree.effective_size());

    // Route today's news through both tables.
    let editions = docs::documents(&dtd, 50, 11);
    let paths = docs::publication_paths(&editions);
    println!(
        "{} documents -> {} publication paths",
        editions.len(),
        paths.len()
    );

    let started = Instant::now();
    let mut flat_matches = 0usize;
    for p in &paths {
        flat_matches += flat.matching_hops(&p.elements, &[]).len();
    }
    let flat_time = started.elapsed();

    let started = Instant::now();
    let mut tree_matches = 0usize;
    for p in &paths {
        tree_matches += tree.matching_hops(&p.elements, &[]).len();
    }
    let tree_time = started.elapsed();

    assert_eq!(
        flat_matches, tree_matches,
        "covering must not change deliveries"
    );
    println!(
        "routing {} paths: flat {:?}, covering tree {:?} ({:.1}x faster)",
        paths.len(),
        flat_time,
        tree_time,
        flat_time.as_secs_f64() / tree_time.as_secs_f64().max(1e-9),
    );
}
