//! A live (threaded) dissemination overlay for protein-database
//! updates: the same brokers the simulator drives, running on real OS
//! threads over channels — the shape a TCP deployment takes.
//!
//! ```sh
//! cargo run --example protein_feed
//! ```

use std::time::Duration;
use xdn::broker::{BrokerId, ClientId, Message, Publication, RoutingConfig};
use xdn::core::adv::{derive_advertisements, DeriveOptions};
use xdn::core::rtable::{AdvId, SubId};
use xdn::net::live::LiveNetworkBuilder;
use xdn::workloads::psd_dtd;
use xdn::xml::paths::{dedup_paths, extract_paths};
use xdn::xml::DocId;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Four brokers in a diamond: 0 - {1,2} - 3.
    let mut builder = LiveNetworkBuilder::new();
    let cfg = RoutingConfig::builder()
        .advertisements(true)
        .covering(true)
        .build();
    for b in 0..4 {
        builder.broker(BrokerId(b), cfg);
    }
    builder
        .link(BrokerId(0), BrokerId(1))
        .link(BrokerId(1), BrokerId(3))
        .link(BrokerId(0), BrokerId(2));

    let curator = ClientId(1); // publishes database updates at broker 0
    let lab = ClientId(2); // watches kinase entries at broker 3
    let archive = ClientId(3); // archives all reference data at broker 2
    builder
        .client(curator, BrokerId(0))
        .client(lab, BrokerId(3))
        .client(archive, BrokerId(2));
    let net = builder.start();

    // Announce the feed.
    let dtd = psd_dtd();
    for (i, adv) in derive_advertisements(&dtd, &DeriveOptions::default())
        .into_iter()
        .enumerate()
    {
        net.send(curator, Message::advertise(AdvId(i as u64), adv));
    }

    // Register interests.
    net.send(
        lab,
        Message::subscribe(SubId(1), "//classification/superfamily".parse()?),
    );
    net.send(
        archive,
        Message::subscribe(SubId(2), "/ProteinDatabase/ProteinEntry/reference".parse()?),
    );
    std::thread::sleep(Duration::from_millis(100)); // control plane settles

    // Publish one update; the document is decomposed into paths by the
    // publisher-side library, exactly as the simulator does.
    let doc = xdn::xml::parse_document(
        "<ProteinDatabase><ProteinEntry>\
           <header><uid>KIN001</uid><accession>A1</accession></header>\
           <protein><name>kinase-like</name></protein>\
           <reference><refinfo><authors><author>Li</author></authors>\
             <citation><cit-title>ICDCS</cit-title></citation></refinfo></reference>\
           <classification><superfamily>protein kinase</superfamily></classification>\
           <sequence><seq-data>MSEQ</seq-data></sequence>\
         </ProteinEntry></ProteinDatabase>",
    )?;
    let bytes = doc.to_xml_string().len();
    for p in dedup_paths(extract_paths(&doc, DocId(1))) {
        net.send(
            curator,
            Message::Publish(Publication::from_doc_path(&p, bytes)),
        );
    }

    // Both subscribers receive the paths their filters select.
    let lab_msg = net.recv_timeout(lab, Duration::from_secs(5));
    let archive_msg = net.recv_timeout(archive, Duration::from_secs(5));
    println!(
        "lab received:     {:?}",
        lab_msg.as_ref().map(Message::kind)
    );
    println!(
        "archive received: {:?}",
        archive_msg.as_ref().map(Message::kind)
    );
    assert!(matches!(lab_msg, Some(Message::Publish(_))));
    assert!(matches!(archive_msg, Some(Message::Publish(_))));

    let stats = net.shutdown();
    for (id, s) in &stats {
        println!(
            "broker {id}: received {} messages, delivered {} to clients",
            s.received_total(),
            s.deliveries
        );
    }
    Ok(())
}
