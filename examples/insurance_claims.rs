//! The paper's motivating scenario (§1): a globally operating
//! insurance company whose branch offices are linked by an overlay of
//! content-based XML routers. Claims, bids, and requests for proposal
//! are submitted anywhere and routed to currently online experts whose
//! interests — line of business, language, region — are XPath filter
//! expressions. Producers and consumers are fully decoupled: nobody
//! holds addresses, all routing is by content.
//!
//! ```sh
//! cargo run --example insurance_claims
//! ```

use xdn::broker::{BrokerId, Merging, RoutingConfig};
use xdn::core::adv::{derive_advertisements, DeriveOptions};
use xdn::net::latency::PlanetLabWan;
use xdn::net::topology::binary_tree;
use xdn::xml::dtd::Dtd;
use xdn::xml::parse_document;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A seven-broker tree: headquarters at the root, regional hubs,
    // branch offices at the leaves, linked over a WAN.
    let mut net = binary_tree(
        3,
        RoutingConfig::builder()
            .advertisements(true)
            .covering(true)
            .merging(Merging::Perfect)
            .build(),
        PlanetLabWan::default(),
    );

    // The claims intake system (a third-party broker in the paper's
    // story) connects at a branch office and announces the document
    // shapes it emits, derived from the corporate claims DTD.
    let dtd = Dtd::parse(
        "<!ELEMENT claim (line, region, language, details)>\n\
         <!ELEMENT line (auto | home | health | marine)>\n\
         <!ELEMENT auto EMPTY>\n\
         <!ELEMENT home EMPTY>\n\
         <!ELEMENT health EMPTY>\n\
         <!ELEMENT marine EMPTY>\n\
         <!ELEMENT region (americas | emea | apac)>\n\
         <!ELEMENT americas EMPTY>\n\
         <!ELEMENT emea EMPTY>\n\
         <!ELEMENT apac EMPTY>\n\
         <!ELEMENT language (#PCDATA)>\n\
         <!ELEMENT details (amount, description?)>\n\
         <!ELEMENT amount (#PCDATA)>\n\
         <!ELEMENT description (#PCDATA)>",
    )?;
    let intake = net.attach_client(BrokerId(4));
    net.advertise_all(
        intake,
        derive_advertisements(&dtd, &DeriveOptions::default()),
    );
    net.run();

    // Experts subscribe from different offices. Note how the marine
    // specialist's filter covers the generalist's narrower one — the
    // network stores only the general filter upstream.
    let marine_expert = net.attach_client(BrokerId(5));
    net.subscribe(marine_expert, "/claim/line/marine".parse()?);

    let emea_generalist = net.attach_client(BrokerId(6));
    net.subscribe(emea_generalist, "/claim/region/emea".parse()?);

    let auditor = net.attach_client(BrokerId(7));
    net.subscribe(auditor, "//amount".parse()?); // every claim has one

    net.run();

    // Two claims come in from the field.
    let marine_claim = parse_document(
        "<claim><line><marine/></line><region><emea/></region>\
         <language>pt</language><details><amount>180000</amount></details></claim>",
    )?;
    let auto_claim = parse_document(
        "<claim><line><auto/></line><region><apac/></region>\
         <language>ja</language><details><amount>3200</amount>\
         <description>bumper</description></details></claim>",
    )?;
    let marine_doc = net.publish_document(intake, &marine_claim);
    let auto_doc = net.publish_document(intake, &auto_claim);
    net.run();

    let recipients = |doc| -> Vec<_> {
        net.metrics()
            .notifications
            .iter()
            .filter(|n| n.doc == doc)
            .map(|n| n.client)
            .collect()
    };
    println!("marine claim delivered to {:?}", recipients(marine_doc));
    println!("auto claim delivered to   {:?}", recipients(auto_doc));

    // The marine claim reaches the marine expert, the EMEA generalist
    // (it is an EMEA claim), and the auditor; the auto claim reaches
    // only the auditor.
    assert_eq!(recipients(marine_doc).len(), 3);
    assert_eq!(recipients(auto_doc), vec![auditor]);

    println!(
        "network traffic: {} messages, mean delay {:?}",
        net.metrics().network_traffic(),
        net.metrics()
            .mean_notification_delay()
            .expect("deliveries observed"),
    );
    Ok(())
}
