//! Offline stand-in for `crossbeam` — the `channel` module the
//! workspace uses, backed by `std::sync::mpsc`. See
//! `third_party/README.md`.

/// Multi-producer channels (std-backed).
///
/// Mirrors crossbeam's unified `Sender` type: both [`unbounded`] and
/// [`bounded`] return the same `Sender<T>`, which internally wraps
/// `std::sync::mpsc::Sender` or `SyncSender`. As in crossbeam, a send
/// on a full bounded channel blocks, and `bounded(0)` is a rendezvous
/// channel.
pub mod channel {
    use std::sync::mpsc;
    pub use std::sync::mpsc::{Receiver, RecvError, RecvTimeoutError, SendError, TryRecvError};

    enum Inner<T> {
        Unbounded(mpsc::Sender<T>),
        Bounded(mpsc::SyncSender<T>),
    }

    impl<T> Clone for Inner<T> {
        fn clone(&self) -> Self {
            match self {
                Inner::Unbounded(s) => Inner::Unbounded(s.clone()),
                Inner::Bounded(s) => Inner::Bounded(s.clone()),
            }
        }
    }

    /// The sending half of a channel (unbounded or bounded).
    pub struct Sender<T>(Inner<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        /// Sends a value, blocking while a bounded channel is full.
        ///
        /// # Errors
        ///
        /// Returns the value back if the receiving half is gone.
        pub fn send(&self, t: T) -> Result<(), SendError<T>> {
            match &self.0 {
                Inner::Unbounded(s) => s.send(t),
                Inner::Bounded(s) => s.send(t),
            }
        }
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(Inner::Unbounded(tx)), rx)
    }

    /// Creates a bounded channel holding at most `cap` in-flight
    /// values; senders block while it is full.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (Sender(Inner::Bounded(tx)), rx)
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{bounded, unbounded};
    use std::time::Duration;

    #[test]
    fn send_recv() {
        let (tx, rx) = unbounded();
        let tx2 = tx.clone();
        tx.send(1).unwrap();
        tx2.send(2).unwrap();
        assert_eq!(rx.recv().unwrap(), 1);
        assert_eq!(rx.recv_timeout(Duration::from_millis(10)).unwrap(), 2);
        assert!(rx.recv_timeout(Duration::from_millis(10)).is_err());
    }

    #[test]
    fn bounded_send_recv() {
        let (tx, rx) = bounded(2);
        tx.send(1).unwrap();
        tx.clone().send(2).unwrap();
        assert_eq!(rx.recv().unwrap(), 1);
        assert_eq!(rx.recv().unwrap(), 2);
    }

    #[test]
    fn bounded_blocks_until_drained() {
        let (tx, rx) = bounded(1);
        tx.send(1).unwrap();
        let t = std::thread::spawn(move || tx.send(2).map_err(|_| ()));
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(rx.recv().unwrap(), 1);
        assert_eq!(rx.recv_timeout(Duration::from_secs(5)).unwrap(), 2);
        t.join().unwrap().unwrap();
    }
}
