//! Offline stand-in for `crossbeam` — the `channel` module the
//! workspace uses, backed by `std::sync::mpsc`. See
//! `third_party/README.md`.

/// Multi-producer channels (std-backed).
pub mod channel {
    pub use std::sync::mpsc::{Receiver, Sender};
    pub use std::sync::mpsc::{RecvError, RecvTimeoutError, SendError, TryRecvError};

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        std::sync::mpsc::channel()
    }
}

#[cfg(test)]
mod tests {
    use super::channel::unbounded;
    use std::time::Duration;

    #[test]
    fn send_recv() {
        let (tx, rx) = unbounded();
        let tx2 = tx.clone();
        tx.send(1).unwrap();
        tx2.send(2).unwrap();
        assert_eq!(rx.recv().unwrap(), 1);
        assert_eq!(rx.recv_timeout(Duration::from_millis(10)).unwrap(), 2);
        assert!(rx.recv_timeout(Duration::from_millis(10)).is_err());
    }
}
