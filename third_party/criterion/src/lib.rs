//! Offline stand-in for `criterion`: runs each benchmark a handful of
//! iterations, times it with `std::time::Instant`, and prints one line
//! per benchmark. No statistics, warm-up, or reports — the numbers are
//! indicative only. See `third_party/README.md`.

use std::fmt::Display;
use std::time::Instant;

pub use std::hint::black_box;

/// How `iter_batched` amortises setup cost. Both variants behave the
/// same here: setup runs once per iteration, outside the timed region.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Inputs cheap enough to batch densely.
    SmallInput,
    /// Inputs large enough to process one at a time.
    LargeInput,
}

/// A benchmark name, optionally parameterised.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Just the parameter.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.id.fmt(f)
    }
}

/// Times closures passed by the benchmark body.
pub struct Bencher {
    iterations: u64,
}

impl Bencher {
    /// Times `routine`, run `iterations` times back to back.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..self.iterations {
            black_box(routine());
        }
    }

    /// Times `routine` over fresh inputs from `setup`; setup time is
    /// excluded by construction (it runs before each timed call).
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..self.iterations {
            let input = setup();
            black_box(routine(input));
        }
    }
}

/// The benchmark driver handed to `criterion_group!` targets.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets the per-benchmark iteration count.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n;
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-benchmark iteration count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    fn run(&mut self, id: &str, body: impl FnOnce(&mut Bencher)) {
        let mut bencher = Bencher {
            iterations: self.sample_size as u64,
        };
        let start = Instant::now();
        body(&mut bencher);
        let elapsed = start.elapsed();
        println!(
            "bench {}/{}: {} iters in {:?} (~{:?}/iter)",
            self.name,
            id,
            bencher.iterations,
            elapsed,
            elapsed / bencher.iterations.max(1) as u32,
        );
    }

    /// Runs one benchmark.
    pub fn bench_function(
        &mut self,
        id: impl Display,
        body: impl FnOnce(&mut Bencher),
    ) -> &mut Self {
        self.run(&id.to_string(), body);
        self
    }

    /// Runs one benchmark over a borrowed input.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        body: impl FnOnce(&mut Bencher, &I),
    ) -> &mut Self {
        self.run(&id.to_string(), |b| body(b, input));
        self
    }

    /// Ends the group (a no-op kept for API compatibility).
    pub fn finish(self) {}
}

/// Bundles benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            $(
                let mut criterion: $crate::Criterion = $config;
                $target(&mut criterion);
            )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Emits `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("smoke");
        group.sample_size(3);
        group.bench_function("iter", |b| b.iter(|| 1 + 1));
        group.bench_with_input(BenchmarkId::new("with_input", 4), &4u32, |b, &n| {
            b.iter_batched(|| n, |v| v * 2, BatchSize::SmallInput)
        });
        group.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn group_runs_all_targets() {
        benches();
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("merge", 32).to_string(), "merge/32");
        assert_eq!(BenchmarkId::from_parameter(7).to_string(), "7");
    }
}
