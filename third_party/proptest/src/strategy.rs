//! Value-generation strategies: the combinator subset the workspace
//! uses, without shrinking.

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

use crate::test_runner::TestRng;

/// Generates values of one type from a [`TestRng`].
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Erases the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: std::rc::Rc::new(self),
        }
    }
}

/// Boxes a strategy (free-function form used by `prop_oneof!`).
pub fn boxed<S: Strategy + 'static>(strategy: S) -> BoxedStrategy<S::Value> {
    strategy.boxed()
}

/// A type-erased strategy.
#[derive(Clone)]
pub struct BoxedStrategy<T> {
    inner: std::rc::Rc<dyn Strategy<Value = T>>,
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.inner.generate(rng)
    }
}

/// Always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The result of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Weighted choice between boxed strategies (built by `prop_oneof!`).
pub struct OneOf<T> {
    choices: Vec<(u32, BoxedStrategy<T>)>,
    total_weight: u64,
}

impl<T> OneOf<T> {
    /// Builds from `(weight, strategy)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if `choices` is empty or all weights are zero.
    pub fn new(choices: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        let total_weight: u64 = choices.iter().map(|(w, _)| *w as u64).sum();
        assert!(
            total_weight > 0,
            "prop_oneof! needs a positive total weight"
        );
        OneOf {
            choices,
            total_weight,
        }
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.below(self.total_weight);
        for (weight, strategy) in &self.choices {
            if pick < *weight as u64 {
                return strategy.generate(rng);
            }
            pick -= *weight as u64;
        }
        unreachable!("pick below total weight")
    }
}

/// Element count for [`crate::collection::vec`]: a fixed size or range.
#[derive(Debug, Clone)]
pub struct SizeRange {
    lo: usize,
    /// Inclusive upper bound.
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

/// The result of [`crate::collection::vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    pub(crate) element: S,
    pub(crate) size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.hi - self.size.lo) as u64 + 1;
        let len = self.size.lo + rng.below(span) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// The result of [`crate::option::of`].
#[derive(Debug, Clone)]
pub struct OptionStrategy<S> {
    pub(crate) inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
        if rng.below(4) == 0 {
            None
        } else {
            Some(self.inner.generate(rng))
        }
    }
}

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Sized {
    /// Draws one value from the full domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.below(2) == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The result of [`any`].
#[derive(Debug, Clone)]
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The whole-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + rng.below(span + 1) as i128) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+);)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0, B.1);
    (A.0, B.1, C.2);
    (A.0, B.1, C.2, D.3);
    (A.0, B.1, C.2, D.3, E.4);
    (A.0, B.1, C.2, D.3, E.4, F.5);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn range_and_map() {
        let mut rng = TestRng::for_case("strategy", 0);
        let doubled = (1..5usize).prop_map(|x| x * 2);
        for _ in 0..200 {
            let v = doubled.generate(&mut rng);
            assert!((2..10).contains(&v) && v % 2 == 0);
        }
    }

    #[test]
    fn signed_inclusive_range() {
        let mut rng = TestRng::for_case("signed", 0);
        for _ in 0..200 {
            let v = (-3..=3i32).generate(&mut rng);
            assert!((-3..=3).contains(&v));
        }
    }

    #[test]
    fn vec_fixed_and_ranged_sizes() {
        let mut rng = TestRng::for_case("vec", 0);
        let fixed = VecStrategy {
            element: 0..9u8,
            size: SizeRange::from(4usize),
        };
        assert_eq!(fixed.generate(&mut rng).len(), 4);
        let ranged = VecStrategy {
            element: 0..9u8,
            size: SizeRange::from(1..6usize),
        };
        for _ in 0..100 {
            assert!((1..6).contains(&ranged.generate(&mut rng).len()));
        }
    }

    #[test]
    fn option_yields_both_variants() {
        let mut rng = TestRng::for_case("option", 0);
        let strat = OptionStrategy { inner: Just(1u8) };
        let (mut some, mut none) = (0, 0);
        for _ in 0..200 {
            match strat.generate(&mut rng) {
                Some(_) => some += 1,
                None => none += 1,
            }
        }
        assert!(some > 0 && none > 0);
    }
}
