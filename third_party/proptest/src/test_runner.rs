//! Per-case deterministic RNG and run configuration.

/// A property-body failure, carried through `?` in fallible bodies.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }

    /// An alias of [`TestCaseError::fail`] kept for API compatibility
    /// (the stub has no rejection/retry machinery).
    pub fn reject(message: impl Into<String>) -> Self {
        Self::fail(message.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.message.fmt(f)
    }
}

impl std::error::Error for TestCaseError {}

/// Controls how many cases each property runs.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A deterministic RNG seeded from the test name and case index, so
/// failures reproduce without a persistence file.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// The RNG for case `case` of the property named `name`.
    pub fn for_case(name: &str, case: u32) -> Self {
        // FNV-1a over the name, mixed with the case index.
        let mut h: u64 = 0xcbf29ce484222325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        let mut rng = TestRng {
            state: h ^ ((case as u64 + 1).wrapping_mul(0x9e3779b97f4a7c15)),
        };
        rng.next_u64(); // discard the first, weakly-mixed output
        rng
    }

    /// The next 64 random bits (xorshift64*).
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }

    /// Uniform draw from `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0)");
        self.next_u64() % bound
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproducible_and_distinct() {
        let a: Vec<u64> = {
            let mut r = TestRng::for_case("t", 0);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = TestRng::for_case("t", 0);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let c: Vec<u64> = {
            let mut r = TestRng::for_case("t", 1);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn below_in_bounds() {
        let mut r = TestRng::for_case("bounds", 0);
        for _ in 0..1000 {
            assert!(r.below(7) < 7);
        }
    }
}
