//! Offline stand-in for `proptest`: a small property-testing runner
//! covering the strategy combinators and macros the workspace uses.
//! Cases are generated from a deterministic per-case RNG; there is no
//! shrinking — a failing property panics with the first failing case.
//! See `third_party/README.md`.

pub mod strategy;
pub mod test_runner;

/// Strategy constructors grouped like the real crate's `prop::` paths.
pub mod collection {
    use crate::strategy::{SizeRange, Strategy, VecStrategy};

    /// A strategy for `Vec`s whose length is drawn from `size` and
    /// whose elements come from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// `Option` strategies.
pub mod option {
    use crate::strategy::{OptionStrategy, Strategy};

    /// Some with probability 3/4, drawing the payload from `inner`.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }
}

/// Everything a test module needs.
pub mod prelude {
    pub use crate::strategy::{any, Arbitrary, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// The `prop::` namespace (`prop::collection::vec`, `prop::option::of`).
pub mod prop {
    pub use crate::collection;
    pub use crate::option;
}

/// Asserts a condition inside a property, with an optional message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Asserts equality inside a property, with an optional message.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Asserts inequality inside a property, with an optional message.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Weighted (or unweighted) choice between strategies producing the
/// same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $(($weight as u32, $crate::strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::prop_oneof![$(1 => $strat),+]
    };
}

/// Declares property tests. Mirrors the real macro's surface:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_prop(x in 0..10usize, v in prop::collection::vec(0..4u32, 1..6)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ [$cfg] $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ [$crate::test_runner::ProptestConfig::default()] $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ([$cfg:expr]) => {};
    ([$cfg:expr]
     $(#[$attr:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$attr])*
        #[allow(clippy::redundant_closure_call)]
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            for case in 0..config.cases {
                let mut __rng = $crate::test_runner::TestRng::for_case(
                    concat!(module_path!(), "::", stringify!($name)),
                    case,
                );
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                // Bodies may use `?` on `Result<_, TestCaseError>`.
                let __outcome = (|| -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(e) = __outcome {
                    panic!("property {} failed at case {}: {}", stringify!($name), case, e);
                }
            }
        }
        $crate::__proptest_impl!{ [$cfg] $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn small_vec() -> impl Strategy<Value = Vec<usize>> {
        prop::collection::vec(0..5usize, 1..4)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_in_bounds(x in 3..9usize, y in 0..100u64) {
            prop_assert!((3..9).contains(&x));
            prop_assert!(y < 100, "y = {}", y);
        }

        #[test]
        fn vec_lengths(v in small_vec()) {
            prop_assert!((1..4).contains(&v.len()));
            prop_assert!(v.iter().all(|&e| e < 5));
        }

        #[test]
        fn oneof_and_map(s in prop_oneof![3 => Just("a"), 1 => Just("b")],
                         n in (0..4usize).prop_map(|i| i * 2)) {
            prop_assert!(s == "a" || s == "b");
            prop_assert_eq!(n % 2, 0);
        }

        #[test]
        fn tuples_and_options(t in (any::<bool>(), 0..3u8), o in prop::option::of(Just(7))) {
            prop_assert!(t.1 < 3);
            if let Some(v) = o { prop_assert_eq!(v, 7); }
        }
    }

    #[test]
    fn one_of_covers_all_choices() {
        let strat = prop_oneof![1 => Just(0), 1 => Just(1), 1 => Just(2)];
        let mut seen = [false; 3];
        for case in 0..200 {
            let mut rng = TestRng::for_case("coverage", case);
            seen[strat.generate(&mut rng) as usize] = true;
        }
        assert_eq!(seen, [true; 3]);
    }
}
