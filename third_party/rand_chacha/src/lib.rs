//! Offline stand-in for `rand_chacha`: a genuine ChaCha-8 core behind
//! the `ChaCha8Rng` name. Deterministic per seed and statistically
//! sound, but the output stream is not bit-identical to the real
//! crate's. See `third_party/README.md`.

use rand::{RngCore, SeedableRng};

/// A ChaCha stream cipher core with 8 rounds, used as an RNG.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    key: [u32; 8],
    counter: u64,
    buf: [u32; 16],
    /// Next unread word in `buf`; 16 means "refill".
    idx: usize,
}

const CHACHA_CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

#[inline]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CHACHA_CONSTANTS);
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        state[14] = 0;
        state[15] = 0;
        let initial = state;
        for _ in 0..4 {
            // One double round: 4 column + 4 diagonal quarter rounds.
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for i in 0..16 {
            self.buf[i] = state[i].wrapping_add(initial[i]);
        }
        self.counter = self.counter.wrapping_add(1);
        self.idx = 0;
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.idx >= 16 {
            self.refill();
        }
        let v = self.buf[self.idx];
        self.idx += 1;
        v
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (i, chunk) in seed.chunks_exact(4).enumerate() {
            key[i] = u32::from_le_bytes(chunk.try_into().expect("4 bytes"));
        }
        ChaCha8Rng {
            key,
            counter: 0,
            buf: [0; 16],
            idx: 16,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_and_seed_sensitive() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(1);
        let mut c = ChaCha8Rng::seed_from_u64(2);
        let xs: Vec<u32> = (0..40).map(|_| a.next_u32()).collect();
        let ys: Vec<u32> = (0..40).map(|_| b.next_u32()).collect();
        let zs: Vec<u32> = (0..40).map(|_| c.next_u32()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn usable_via_rng_trait() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let mut counts = [0usize; 4];
        for _ in 0..4000 {
            counts[rng.gen_range(0..4usize)] += 1;
        }
        assert!(counts.iter().all(|&c| c > 800), "skewed: {counts:?}");
    }
}
