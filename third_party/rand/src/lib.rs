//! Offline stand-in for `rand` — the `RngCore`/`Rng`/`SeedableRng`
//! subset the workspace uses. Deterministic per seed but not
//! stream-compatible with the real crate. See `third_party/README.md`.

use std::ops::{Range, RangeInclusive};

/// A source of random bits.
pub trait RngCore {
    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rest = chunks.into_remainder();
        if !rest.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rest.copy_from_slice(&bytes[..rest.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Convenience sampling methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform draw from `range` (half-open or inclusive).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// True with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability {p} out of range"
        );
        // 53 high bits -> uniform in [0, 1).
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A range that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one value.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}

impl_sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as i64).wrapping_sub(lo as i64) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add((rng.next_u64() % (span + 1)) as $t)
            }
        }
    )*};
}

impl_sample_range_int!(i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        let unit = ((rng.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

/// An RNG constructible from a seed.
pub trait SeedableRng: Sized {
    /// The seed type (a byte array).
    type Seed: AsMut<[u8]> + Default;

    /// Builds the RNG from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the RNG from a `u64`, expanded with SplitMix64 (the same
    /// scheme the real crate documents).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

/// Pseudo-random generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast xoshiro256** generator (stand-in for `StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().expect("8 bytes"));
            }
            // Never all-zero.
            if s == [0; 4] {
                s = [0x9e3779b97f4a7c15, 1, 2, 3];
            }
            StdRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_by_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn gen_range_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3..17usize);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(-5..=5i32);
            assert!((-5..=5).contains(&w));
        }
    }

    #[test]
    fn gen_bool_rates() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits}");
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn dyn_rng_usable() {
        fn takes_dyn(rng: &mut dyn RngCore) -> usize {
            rng.gen_range(0..10usize)
        }
        let mut rng = StdRng::seed_from_u64(3);
        assert!(takes_dyn(&mut rng) < 10);
    }
}
