//! Offline stand-in for the `bytes` crate — the subset the workspace
//! uses. See `third_party/README.md`.

use std::ops::{Deref, DerefMut};

/// An immutable byte buffer (here: a plain `Vec<u8>` wrapper).
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct Bytes {
    data: Vec<u8>,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes { data: Vec::new() }
    }

    /// Number of bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Copies a slice into an owned buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes {
            data: data.to_vec(),
        }
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Bytes { data }
    }
}

impl From<BytesMut> for Bytes {
    fn from(b: BytesMut) -> Self {
        Bytes { data: b.data }
    }
}

/// A growable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut { data: Vec::new() }
    }

    /// An empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Number of bytes written.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Appends a slice.
    pub fn extend_from_slice(&mut self, extend: &[u8]) {
        self.data.extend_from_slice(extend);
    }

    /// Freezes into an immutable buffer.
    pub fn freeze(self) -> Bytes {
        Bytes { data: self.data }
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

/// Read access to a byte cursor.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// The unread bytes.
    fn chunk(&self) -> &[u8];
    /// Skips `cnt` bytes.
    fn advance(&mut self, cnt: usize);

    /// True if any bytes are left.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Reads a `u8` (big-endian is trivial), advancing the cursor.
    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    /// Reads a big-endian `u16`.
    fn get_u16(&mut self) -> u16 {
        let v = u16::from_be_bytes(self.chunk()[..2].try_into().expect("2 bytes"));
        self.advance(2);
        v
    }

    /// Reads a big-endian `u32`.
    fn get_u32(&mut self) -> u32 {
        let v = u32::from_be_bytes(self.chunk()[..4].try_into().expect("4 bytes"));
        self.advance(4);
        v
    }

    /// Reads a big-endian `u64`.
    fn get_u64(&mut self) -> u64 {
        let v = u64::from_be_bytes(self.chunk()[..8].try_into().expect("8 bytes"));
        self.advance(8);
        v
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        *self = &self[cnt..];
    }
}

/// Write access to a byte sink.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends a `u8`.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a big-endian `u16`.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let mut b = BytesMut::with_capacity(16);
        b.put_u8(1);
        b.put_u16(2);
        b.put_u32(3);
        b.put_u64(4);
        b.put_slice(b"xy");
        let frozen = b.freeze();
        let mut r: &[u8] = &frozen;
        assert_eq!(r.remaining(), 17);
        assert_eq!(r.get_u8(), 1);
        assert_eq!(r.get_u16(), 2);
        assert_eq!(r.get_u32(), 3);
        assert_eq!(r.get_u64(), 4);
        assert_eq!(r.chunk(), b"xy");
        r.advance(2);
        assert!(!r.has_remaining());
    }
}
