//! Offline stand-in for the [loom] model checker.
//!
//! The container has no network access, so the real `loom` crate (which
//! instruments every atomic/lock operation and exhaustively enumerates
//! thread interleavings under the C11 memory model) cannot be vendored.
//! This stub keeps the *loom programming model* — tests written against
//! `loom::sync`/`loom::thread` inside `loom::model(..)` closures, gated
//! behind `--cfg loom` — so the models are ready to run under real loom
//! on a networked CI runner, while still giving local value:
//!
//! * `loom::model(f)` re-runs `f` many times (`LOOM_ITERS`, default 64)
//!   with real OS threads. This is brute-force schedule sampling, not
//!   exhaustive exploration: it catches racy panics, deadlocks (via the
//!   test harness timeout), and assertion failures under scheduling
//!   jitter, but proves nothing.
//! * The `sync`/`thread`/`hint` modules re-export `std`, so any API
//!   used by a model is the API the production code uses.
//!
//! Swapping in the real crate is a one-line Cargo change; no test
//! source changes are needed.
//!
//! [loom]: https://docs.rs/loom

/// Runs `f` repeatedly with real threads to sample schedules.
///
/// Iteration count comes from `LOOM_ITERS` (default 64). Panics inside
/// `f` propagate on the iteration that hits them, preserving loom's
/// fail-fast behaviour.
pub fn model<F>(f: F)
where
    F: Fn() + Sync + Send + 'static,
{
    let iters: usize = std::env::var("LOOM_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64);
    for _ in 0..iters {
        f();
    }
}

/// Re-exports of `std::sync` types under loom's module layout.
pub mod sync {
    pub use std::sync::{Arc, Condvar, Mutex, MutexGuard, RwLock};

    /// `std::sync::atomic` under loom's path.
    pub mod atomic {
        pub use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
    }

    /// `std::sync::mpsc` under loom's path.
    pub mod mpsc {
        pub use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
    }
}

/// Re-export of `std::thread` (loom models `spawn`/`yield_now`).
pub mod thread {
    pub use std::thread::{spawn, yield_now, JoinHandle};
}

/// Re-export of `std::hint` (loom models `spin_loop`).
pub mod hint {
    pub use std::hint::spin_loop;
}
