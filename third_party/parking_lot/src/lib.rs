//! Offline stand-in for `parking_lot` — poison-ignoring wrappers over
//! `std::sync`. See `third_party/README.md`.

use std::sync::{self, PoisonError};

/// A mutex whose `lock` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Wraps a value.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, ignoring poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Tries to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }
}

/// A reader-writer lock whose accessors never return poison errors.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// Guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Wraps a value.
    pub fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock, ignoring poisoning.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires an exclusive write lock, ignoring poisoning.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basics() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basics() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }
}
