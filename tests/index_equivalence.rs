//! The candidate-pruning index is a pure matching accelerator: with it
//! enabled or disabled, a simulated overlay must produce bit-identical
//! Table 2/3 observables — per-kind broker traffic, every notification
//! (receiver, document, delay, hops), and client-message counts.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use xdn::broker::{ClientId, MatchStrategy, RoutingConfig};
use xdn::core::adv::{derive_advertisements, DeriveOptions};
use xdn::net::latency::ClusterLan;
use xdn::net::metrics::NetMetrics;
use xdn::net::sim::ProcessingModel;
use xdn::net::topology::{binary_tree, binary_tree_leaves};
use xdn::workloads::{docs, psd_dtd, sets};
use xdn::xpath::generate::generate_distinct_xpes;

/// Runs the Table 2-style workload (7-broker tree, per-leaf
/// subscribers, one randomly placed publisher) and returns the metrics.
fn run(config: RoutingConfig, seed: u64) -> NetMetrics {
    let dtd = psd_dtd();
    let mut net = binary_tree(3, config, ClusterLan::default());
    net.set_processing_model(ProcessingModel::Zero);

    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let ids = net.broker_ids();
    let publisher = net.attach_client(ids[rng.gen_range(0..ids.len())]);

    if config.advertisements {
        net.advertise_all(
            publisher,
            derive_advertisements(&dtd, &DeriveOptions::default()),
        );
        net.run();
    }
    for (i, leaf) in binary_tree_leaves(3).into_iter().enumerate() {
        let subscriber = net.attach_client(leaf);
        let mut qrng = ChaCha8Rng::seed_from_u64(seed + 100 + i as u64);
        for q in generate_distinct_xpes(&dtd, 120, &sets::set_a_config(), &mut qrng) {
            net.subscribe(subscriber, q);
        }
    }
    net.run();

    for doc in docs::documents(&dtd, 6, seed + 1) {
        net.publish_document(publisher, &doc);
    }
    net.run();
    net.metrics().clone()
}

fn assert_bit_identical(with: &NetMetrics, without: &NetMetrics) {
    assert_eq!(
        with.broker_messages, without.broker_messages,
        "per-kind broker traffic must not change"
    );
    assert_eq!(
        with.client_messages, without.client_messages,
        "client deliveries must not change"
    );
    assert_eq!(
        with.notifications, without.notifications,
        "every notification (receiver, doc, delay, hops) must be identical"
    );
    assert!(
        !with.notifications.is_empty(),
        "workload must actually deliver documents"
    );
}

#[test]
fn indexing_is_invisible_when_flooding() {
    let base = RoutingConfig::builder();
    let indexed = run(base.strategy(MatchStrategy::Indexed).build(), 21);
    let flat = run(base.strategy(MatchStrategy::Flat).build(), 21);
    assert_bit_identical(&indexed, &flat);
}

#[test]
fn indexing_is_invisible_with_advertisements() {
    let base = RoutingConfig::builder().advertisements(true);
    let indexed = run(base.strategy(MatchStrategy::Indexed).build(), 22);
    let flat = run(base.strategy(MatchStrategy::Flat).build(), 22);
    assert_bit_identical(&indexed, &flat);
}

#[test]
fn delivery_sets_match_the_covering_strategy() {
    // Cross-check against the covering PRT: different traffic (that is
    // the point of covering), same delivered (client, doc) pairs.
    let pairs = |m: &NetMetrics| -> std::collections::BTreeSet<(ClientId, xdn::xml::DocId)> {
        m.notifications.iter().map(|n| (n.client, n.doc)).collect()
    };
    let indexed = run(RoutingConfig::builder().advertisements(true).build(), 23);
    let covering = run(
        RoutingConfig::builder()
            .advertisements(true)
            .covering(true)
            .build(),
        23,
    );
    assert_eq!(pairs(&indexed), pairs(&covering));
}
