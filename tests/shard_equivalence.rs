//! The sharded parallel matcher is a pure routing accelerator: with
//! `MatchStrategy::Sharded` a simulated overlay must produce
//! bit-identical observables to the sequential `Indexed` strategy —
//! per-kind broker traffic, every notification (receiver, document,
//! delay, hops), and client-message counts — and under the chaos
//! checker the delivery multiset must equal the sequential broker's
//! exactly (no losses, no duplicates), proving the batched parallel
//! ingest preserves the at-least-once sequencing layer.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::collections::BTreeMap;
use xdn::broker::{ClientId, MatchStrategy, RoutingConfig};
use xdn::core::adv::{derive_advertisements, DeriveOptions};
use xdn::net::chaos::{self, FaultOp, FaultScript};
use xdn::net::latency::ClusterLan;
use xdn::net::metrics::NetMetrics;
use xdn::net::sim::{Network, ProcessingModel};
use xdn::net::topology::{binary_tree, binary_tree_leaves, chain};
use xdn::workloads::{docs, psd_dtd, sets};
use xdn::xml::{DocId, PathId};
use xdn::xpath::generate::generate_distinct_xpes;

const SHARDS: usize = 4;
const CHAOS_SEED: u64 = 31;
const N_DOCS: usize = 12;

/// Runs the Table 2-style workload (7-broker tree, per-leaf
/// subscribers, one randomly placed publisher) and returns the metrics.
fn run(config: RoutingConfig, seed: u64) -> NetMetrics {
    let dtd = psd_dtd();
    let mut net = binary_tree(3, config, ClusterLan::default());
    net.set_processing_model(ProcessingModel::Zero);

    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let ids = net.broker_ids();
    let publisher = net.attach_client(ids[rng.gen_range(0..ids.len())]);

    if config.advertisements {
        net.advertise_all(
            publisher,
            derive_advertisements(&dtd, &DeriveOptions::default()),
        );
        net.run();
    }
    for (i, leaf) in binary_tree_leaves(3).into_iter().enumerate() {
        let subscriber = net.attach_client(leaf);
        let mut qrng = ChaCha8Rng::seed_from_u64(seed + 100 + i as u64);
        for q in generate_distinct_xpes(&dtd, 120, &sets::set_a_config(), &mut qrng) {
            net.subscribe(subscriber, q);
        }
    }
    net.run();

    for doc in docs::documents(&dtd, 6, seed + 1) {
        net.publish_document(publisher, &doc);
    }
    net.run();
    net.metrics().clone()
}

fn assert_bit_identical(sharded: &NetMetrics, sequential: &NetMetrics) {
    assert_eq!(
        sharded.broker_messages, sequential.broker_messages,
        "per-kind broker traffic must not change"
    );
    assert_eq!(
        sharded.client_messages, sequential.client_messages,
        "client deliveries must not change"
    );
    assert_eq!(
        sharded.notifications, sequential.notifications,
        "every notification (receiver, doc, delay, hops) must be identical"
    );
    assert!(
        !sharded.notifications.is_empty(),
        "workload must actually deliver documents"
    );
}

#[test]
fn sharding_is_invisible_when_flooding() {
    let base = RoutingConfig::builder();
    let sharded = run(
        base.strategy(MatchStrategy::Sharded { shards: SHARDS })
            .build(),
        41,
    );
    let sequential = run(base.strategy(MatchStrategy::Indexed).build(), 41);
    assert_bit_identical(&sharded, &sequential);
}

#[test]
fn sharding_is_invisible_with_advertisements() {
    let base = RoutingConfig::builder().advertisements(true);
    let sharded = run(
        base.strategy(MatchStrategy::Sharded { shards: SHARDS })
            .build(),
        42,
    );
    let sequential = run(base.strategy(MatchStrategy::Indexed).build(), 42);
    assert_bit_identical(&sharded, &sequential);
}

/// Builds an `n`-broker chain with a publisher on one end and a
/// subscriber on the other, control plane fully settled.
fn build(n: u32, config: RoutingConfig) -> (Network, ClientId) {
    let dtd = psd_dtd();
    let mut net = chain(n, config, ClusterLan::default());
    net.set_processing_model(ProcessingModel::Zero);
    net.set_record_deliveries(true);
    let ids = net.broker_ids();
    let publisher = net.attach_client(ids[0]);
    let subscriber = net.attach_client(ids[n as usize - 1]);

    net.advertise_all(
        publisher,
        derive_advertisements(&dtd, &DeriveOptions::default()),
    );
    net.run();
    let mut qrng = ChaCha8Rng::seed_from_u64(CHAOS_SEED + 1);
    for q in generate_distinct_xpes(&dtd, 25, &sets::set_a_config(), &mut qrng) {
        net.subscribe(subscriber, q);
    }
    net.run();
    (net, publisher)
}

/// Publishes documents `[from, to)` of the deterministic workload.
fn publish_range(net: &mut Network, publisher: ClientId, from: usize, to: usize) {
    let dtd = psd_dtd();
    for d in &docs::documents(&dtd, N_DOCS, CHAOS_SEED + 500)[from..to] {
        net.publish_document(publisher, d);
    }
}

/// Chaos equivalence: the sharded broker's post-recovery delivery
/// multiset must equal the *sequential* broker's never-failed run —
/// the strongest form of "parallel matching changes nothing": same
/// workload, different matching engine, one interior crash and one
/// link flap, exactly-once equality across both axes at once.
#[test]
fn sharded_chaos_delivery_multiset_matches_sequential() {
    let sequential = RoutingConfig::builder()
        .advertisements(true)
        .strategy(MatchStrategy::Indexed)
        .build();
    let sharded = RoutingConfig::builder()
        .advertisements(true)
        .strategy(MatchStrategy::Sharded { shards: SHARDS })
        .build();

    // Ground truth: the sequential broker, no faults.
    let expected: BTreeMap<(ClientId, DocId, PathId), usize> = {
        let (mut healthy, h_pub) = build(4, sequential);
        publish_range(&mut healthy, h_pub, 0, N_DOCS);
        healthy.run();
        let counts = chaos::delivery_counts(&healthy);
        assert!(!counts.is_empty(), "workload must produce deliveries");
        counts
    };

    // Chaos run: the sharded broker under the tier-1 fault schedule.
    let (mut net, publisher) = build(4, sharded);
    let ids = net.broker_ids();
    let script = FaultScript {
        seed: CHAOS_SEED,
        slots: 3,
        ops: vec![
            (1, FaultOp::Crash(ids[1])),
            (1, FaultOp::DropLink(ids[2], ids[3])),
            (2, FaultOp::Restart(ids[1])),
            (3, FaultOp::RestoreLink(ids[2], ids[3])),
        ],
    };
    chaos::run_script(&mut net, &script, |net, slot| {
        publish_range(net, publisher, slot * N_DOCS / 3, (slot + 1) * N_DOCS / 3);
    });

    let report = chaos::check_exact_delivery(&script, &expected, &net);
    assert!(
        report.ok(),
        "sharded delivery multiset diverged from the sequential reference: {}",
        report.to_json()
    );
    assert!(
        report.retransmits > 0,
        "the crash must exercise the retransmit path: {}",
        report.to_json()
    );
}
