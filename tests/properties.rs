//! Property-based tests for the core routing invariants.
//!
//! These are the properties the system's correctness rests on:
//!
//! * covering soundness — `covers(s1, s2)` implies every path matching
//!   `s2` matches `s1` (a false positive would silently drop live
//!   subscriptions);
//! * adv–sub overlap completeness — if a publication matches both an
//!   advertisement and a subscription, the overlap test must say so (a
//!   false negative would break delivery);
//! * optimized algorithms agree with their naive reference versions;
//! * mergers cover their inputs.

use proptest::prelude::*;
use xdn::core::adv::{AdvPath, AdvSegment, Advertisement};
use xdn::core::advmatch::{
    adv_covers, adv_overlaps_sub, rel_expr_and_adv, rel_expr_and_adv_naive, PreparedAdv,
};
use xdn::core::cover::{covers, rel_sim_cov, rel_sim_cov_naive};
use xdn::core::merge::{try_merge_pair, MergeConfig};
use xdn::xpath::{Axis, NodeTest, Step, Xpe};

const ALPHABET: &[&str] = &["a", "b", "c", "d"];

fn arb_test() -> impl Strategy<Value = NodeTest> {
    prop_oneof![
        4 => (0..ALPHABET.len()).prop_map(|i| NodeTest::Name(ALPHABET[i].to_owned())),
        1 => Just(NodeTest::Wildcard),
    ]
}

fn arb_axis() -> impl Strategy<Value = Axis> {
    prop_oneof![3 => Just(Axis::Child), 1 => Just(Axis::Descendant)]
}

fn arb_xpe() -> impl Strategy<Value = Xpe> {
    (
        any::<bool>(),
        prop::collection::vec((arb_axis(), arb_test()), 1..6),
    )
        .prop_map(|(absolute, steps)| {
            let steps: Vec<Step> = steps
                .into_iter()
                .map(|(axis, test)| Step {
                    axis,
                    test,
                    predicates: Vec::new(),
                })
                .collect();
            Xpe::new(absolute, steps)
        })
}

fn arb_simple_xpe(absolute: bool) -> impl Strategy<Value = Xpe> {
    prop::collection::vec(arb_test(), 1..6).prop_map(move |tests| {
        let steps: Vec<Step> = tests
            .into_iter()
            .map(|test| Step {
                axis: Axis::Child,
                test,
                predicates: Vec::new(),
            })
            .collect();
        Xpe::new(absolute, steps)
    })
}

fn arb_path() -> impl Strategy<Value = Vec<String>> {
    prop::collection::vec(
        (0..ALPHABET.len()).prop_map(|i| ALPHABET[i].to_owned()),
        1..8,
    )
}

fn arb_adv_path() -> impl Strategy<Value = AdvPath> {
    prop::collection::vec(arb_test(), 1..8).prop_map(AdvPath::new)
}

fn arb_advertisement() -> impl Strategy<Value = Advertisement> {
    // Plain, simple-recursive, or series-recursive shapes.
    (
        prop::collection::vec(arb_test(), 1..4),
        prop::option::of(prop::collection::vec(arb_test(), 1..3)),
        prop::collection::vec(arb_test(), 0..3),
    )
        .prop_map(|(head, repeat, tail)| {
            let mut segments = vec![AdvSegment::Plain(AdvPath::new(head))];
            if let Some(body) = repeat {
                segments.push(AdvSegment::Repeat(vec![AdvSegment::Plain(AdvPath::new(
                    body,
                ))]));
            }
            if !tail.is_empty() {
                segments.push(AdvSegment::Plain(AdvPath::new(tail)));
            }
            Advertisement::new(segments)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Covering soundness: a claimed cover never misses a path.
    #[test]
    fn covering_is_sound(s1 in arb_xpe(), s2 in arb_xpe(), path in arb_path()) {
        if covers(&s1, &s2) && s2.matches_path(&path) {
            prop_assert!(
                s1.matches_path(&path),
                "{s1} claims to cover {s2} but misses path {path:?}"
            );
        }
    }

    /// Covering is reflexive and transitive on sampled triples.
    #[test]
    fn covering_is_reflexive(s in arb_xpe()) {
        prop_assert!(covers(&s, &s), "{s} must cover itself");
    }

    #[test]
    fn covering_is_transitive(a in arb_xpe(), b in arb_xpe(), c in arb_xpe()) {
        if covers(&a, &b) && covers(&b, &c) {
            prop_assert!(covers(&a, &c), "{a} ⊒ {b} ⊒ {c} but not {a} ⊒ {c}");
        }
    }

    /// The KMP-style relative covering agrees with the naive scan.
    #[test]
    fn rel_cov_kmp_matches_naive(
        s1 in arb_simple_xpe(false),
        s2 in arb_simple_xpe(true),
    ) {
        prop_assert_eq!(
            rel_sim_cov_naive(&s1, &s2),
            rel_sim_cov(&s1, &s2),
            "KMP disagreement on {} vs {}", &s1, &s2
        );
    }

    /// The KMP-style relative overlap agrees with the naive scan.
    #[test]
    fn rel_overlap_kmp_matches_naive(
        adv in arb_adv_path(),
        sub in arb_simple_xpe(false),
    ) {
        prop_assert_eq!(
            rel_expr_and_adv_naive(&adv, &sub),
            rel_expr_and_adv(&adv, &sub),
            "KMP overlap disagreement on {} vs {}", &adv, &sub
        );
    }

    /// Overlap completeness: a publication matching both the
    /// advertisement and the subscription forces `adv_overlaps_sub`.
    #[test]
    fn overlap_has_no_false_negatives(
        adv in arb_advertisement(),
        sub in arb_xpe(),
        path in arb_path(),
    ) {
        if adv.matches_path(&path) && sub.matches_path(&path) {
            prop_assert!(
                adv_overlaps_sub(&adv, &sub),
                "pub {path:?} matches adv {adv} and sub {sub}, but no overlap reported"
            );
        }
    }

    /// Prepared advertisements decide exactly like the dynamic
    /// algorithm.
    #[test]
    fn prepared_adv_is_exact(adv in arb_advertisement(), sub in arb_xpe()) {
        let prepared = PreparedAdv::new(adv.clone(), 16);
        prop_assert_eq!(
            prepared.overlaps(&sub),
            adv_overlaps_sub(&adv, &sub),
            "prepared/dynamic disagreement on {} vs {}", &adv, &sub
        );
    }

    /// Advertisement covering is sound w.r.t. advertised paths.
    #[test]
    fn adv_covering_is_sound(a1 in arb_adv_path(), a2 in arb_adv_path(), path in arb_path()) {
        if adv_covers(&a1, &a2) && a2.matches_path(&path) {
            prop_assert!(a1.matches_path(&path));
        }
    }

    /// Every merger covers both of its inputs.
    #[test]
    fn mergers_cover_inputs(s1 in arb_xpe(), s2 in arb_xpe()) {
        let cfg = MergeConfig { rule3_min_shared: 0.0, ..MergeConfig::default() };
        if let Some(m) = try_merge_pair(&s1, &s2, &cfg) {
            prop_assert!(covers(&m, &s1), "merger {m} does not cover {s1}");
            prop_assert!(covers(&m, &s2), "merger {m} does not cover {s2}");
        }
    }

    /// Mergers never lose publications.
    #[test]
    fn mergers_preserve_matches(s1 in arb_xpe(), s2 in arb_xpe(), path in arb_path()) {
        let cfg = MergeConfig { rule3_min_shared: 0.0, ..MergeConfig::default() };
        if let Some(m) = try_merge_pair(&s1, &s2, &cfg) {
            if s1.matches_path(&path) || s2.matches_path(&path) {
                prop_assert!(m.matches_path(&path));
            }
        }
    }

    /// Expansions of an advertisement advertise exactly what it does.
    #[test]
    fn expansions_are_consistent(adv in arb_advertisement(), path in arb_path()) {
        let exps = adv.expansions(2 * path.len() + 2, path.len());
        let via_expansion = exps.iter().any(|e| e.matches_path(&path));
        prop_assert_eq!(
            via_expansion,
            adv.matches_path(&path),
            "expansion/direct disagreement for {} on {:?}", &adv, &path
        );
    }

    /// Display/parse round-trips for generated expressions.
    #[test]
    fn xpe_display_roundtrips(x in arb_xpe()) {
        let reparsed: Xpe = x.to_string().parse().expect("display must reparse");
        prop_assert_eq!(&reparsed, &x);
    }
}
