//! Chaos tests: broker failure and recovery under a live stream.
//!
//! Every test compares a faulted run against a never-failed reference
//! run of the same deterministic workload: after all faults are
//! repaired, the subscriber must end up with exactly the reference
//! deliveries — no losses, no duplicates — and (where the routing
//! state is comparable) bit-identical routing tables. The sequenced
//! per-link channel (`xdn_broker::reliable`) is what makes this hold:
//! unacked frames are replayed on sync and dedup windows absorb the
//! overlap.
//!
//! One small scenario (`tier1_small_chaos_recovers_exactly`) runs in
//! the default tier-1 suite. The heavier scripted runs stay behind
//! `--ignored` (exercised by CI's chaos job, one process per seed:
//! `XDN_CHAOS_SEED=<n> cargo test --test chaos -- --ignored`); each
//! writes `target/chaos-report-<seed>.json`, the machine-readable
//! zero-loss proof CI archives as an artifact.

use std::collections::{BTreeMap, BTreeSet};
use xdn::broker::{ClientId, RoutingConfig};
use xdn::net::chaos::{self, FaultOp, FaultScript};
use xdn::net::latency::ClusterLan;
use xdn::net::sim::{Network, ProcessingModel};
use xdn::net::topology::chain;
use xdn::workloads::{docs, psd_dtd, sets};
use xdn::xml::{DocId, PathId};
use xdn::xpath::generate::generate_distinct_xpes;

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

const SEED: u64 = 11;
const N_DOCS: usize = 12;

/// Builds an `n`-broker chain with a publisher on one end and a
/// subscriber on the other, control plane fully settled.
fn build(n: u32, config: RoutingConfig) -> (Network, ClientId, ClientId) {
    let dtd = psd_dtd();
    let mut net = chain(n, config, ClusterLan::default());
    net.set_processing_model(ProcessingModel::Zero);
    net.set_record_deliveries(true);
    let ids = net.broker_ids();
    let publisher = net.attach_client(ids[0]);
    let subscriber = net.attach_client(ids[n as usize - 1]);

    net.advertise_all(
        publisher,
        xdn::core::adv::derive_advertisements(&dtd, &xdn::core::adv::DeriveOptions::default()),
    );
    net.run();
    let mut qrng = ChaCha8Rng::seed_from_u64(SEED + 1);
    for q in generate_distinct_xpes(&dtd, 25, &sets::set_a_config(), &mut qrng) {
        net.subscribe(subscriber, q);
    }
    net.run();
    (net, publisher, subscriber)
}

/// Publishes documents `[from, to)` of the deterministic workload.
fn publish_range(net: &mut Network, publisher: ClientId, from: usize, to: usize) {
    let dtd = psd_dtd();
    for d in &docs::documents(&dtd, N_DOCS, SEED + 500)[from..to] {
        net.publish_document(publisher, d);
    }
}

/// Per-broker routing signatures, keyed by broker id.
fn signatures(net: &Network) -> Vec<String> {
    net.broker_ids()
        .iter()
        .map(|&id| net.broker(id).routing_signature())
        .collect()
}

fn delivery_counts(net: &Network) -> BTreeMap<(ClientId, DocId, PathId), usize> {
    chaos::delivery_counts(net)
}

/// Runs the full workload with no faults and returns its delivery
/// multiset — the ground truth every chaos run is held to.
fn healthy_reference(n: u32, config: RoutingConfig) -> BTreeMap<(ClientId, DocId, PathId), usize> {
    let (mut healthy, h_pub, _h_sub) = build(n, config);
    publish_range(&mut healthy, h_pub, 0, N_DOCS);
    healthy.run();
    let expected = delivery_counts(&healthy);
    assert!(!expected.is_empty(), "workload must produce deliveries");
    expected
}

/// Tier-1 chaos: a 4-broker chain takes one interior crash and one
/// link flap mid-stream, with a fixed hand-written schedule. Small
/// enough for the default `cargo test` run; the invariant is the same
/// exactly-once equality the heavy scripted runs prove.
#[test]
fn tier1_small_chaos_recovers_exactly() {
    let config = RoutingConfig::builder()
        .advertisements(true)
        .covering(true)
        .build();
    let expected = healthy_reference(4, config);

    let (mut net, publisher, _subscriber) = build(4, config);
    let ids = net.broker_ids();
    let script = FaultScript {
        seed: SEED,
        slots: 3,
        ops: vec![
            (1, FaultOp::Crash(ids[1])),
            (1, FaultOp::DropLink(ids[2], ids[3])),
            (2, FaultOp::Restart(ids[1])),
            (3, FaultOp::RestoreLink(ids[2], ids[3])),
        ],
    };
    chaos::run_script(&mut net, &script, |net, slot| {
        publish_range(net, publisher, slot * N_DOCS / 3, (slot + 1) * N_DOCS / 3);
    });

    let report = chaos::check_exact_delivery(&script, &expected, &net);
    assert!(
        report.ok(),
        "delivery invariant violated: {}",
        report.to_json()
    );
    assert!(
        report.retransmits > 0,
        "the crash must exercise the retransmit path: {}",
        report.to_json()
    );
}

/// Scripted chaos: a seeded generated fault schedule (from
/// `XDN_CHAOS_SEED`, default 11) against a 5-broker chain. Writes the
/// invariant report to `target/chaos-report-<seed>.json` whether it
/// passes or not, so CI archives the proof (or the counterexample).
#[test]
#[ignore = "chaos tier: run with --ignored"]
fn scripted_chaos_zero_loss_for_seed() {
    let seed = std::env::var("XDN_CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(SEED);
    let config = RoutingConfig::builder()
        .advertisements(true)
        .covering(true)
        .build();
    let expected = healthy_reference(5, config);

    let (mut net, publisher, _subscriber) = build(5, config);
    let ids = net.broker_ids();
    let links: Vec<_> = ids.windows(2).map(|w| (w[0], w[1])).collect();
    // Client-edge brokers are protected: client⇄broker frames ride no
    // sequenced link, so crashing a home broker loses state the
    // overlay is not responsible for recovering.
    let protected = [ids[0], ids[4]];
    let slots = 4;
    let script = FaultScript::generate(seed, &ids, &links, slots, &protected);

    chaos::run_script(&mut net, &script, |net, slot| {
        publish_range(
            net,
            publisher,
            slot * N_DOCS / slots,
            (slot + 1) * N_DOCS / slots,
        );
    });

    let report = chaos::check_exact_delivery(&script, &expected, &net);
    let json = report.to_json();
    std::fs::create_dir_all("target").expect("target dir");
    std::fs::write(format!("target/chaos-report-{seed}.json"), &json).expect("write report");
    println!("chaos report (seed {seed}): {json}");
    assert!(report.ok(), "delivery invariant violated: {json}");
}

#[test]
#[ignore = "chaos tier: run with --ignored"]
fn middle_broker_crash_mid_stream_recovers_exactly() {
    let config = RoutingConfig::builder()
        .advertisements(true)
        .covering(true)
        .build();

    // Reference: the same workload with no failure.
    let expected = healthy_reference(5, config);
    let healthy_sigs = {
        let (mut healthy, h_pub, _h_sub) = build(5, config);
        publish_range(&mut healthy, h_pub, 0, N_DOCS);
        healthy.run();
        signatures(&healthy)
    };

    // Chaos run: the middle broker dies with publications in flight.
    let (mut net, publisher, _subscriber) = build(5, config);
    let middle = net.broker_ids()[2];

    publish_range(&mut net, publisher, 0, N_DOCS / 3);
    net.run();

    net.crash_broker(middle);
    assert!(net.is_down(middle));
    // Published into the outage: these frames park at the fault line.
    publish_range(&mut net, publisher, N_DOCS / 3, 2 * N_DOCS / 3);
    net.run();
    assert!(
        net.parked_len() > 0,
        "traffic toward the dead broker must park, not vanish"
    );

    // Restart: neighbour sync rebuilds the SRT/PRT, then parked
    // traffic replays.
    net.restart_broker(middle);
    publish_range(&mut net, publisher, 2 * N_DOCS / 3, N_DOCS);
    net.run();

    let got = delivery_counts(&net);
    let missing: Vec<_> = expected.keys().filter(|k| !got.contains_key(*k)).collect();
    assert!(
        missing.is_empty(),
        "deliveries lost across the crash: {missing:?}"
    );
    let duplicated: Vec<_> = got.iter().filter(|(_, &n)| n > 1).collect();
    assert!(
        duplicated.is_empty(),
        "duplicate deliveries after recovery: {duplicated:?}"
    );
    let extra: Vec<_> = got.keys().filter(|k| !expected.contains_key(*k)).collect();
    assert!(
        extra.is_empty(),
        "spurious deliveries after recovery: {extra:?}"
    );
    assert_eq!(
        net.metrics().dropped_crash,
        0,
        "park buffer must not overflow here"
    );

    // The recovered overlay must be routing-table-identical to the
    // never-failed one — SRT and PRT both, on every broker.
    assert_eq!(
        signatures(&net),
        healthy_sigs,
        "routing state after recovery diverges from the never-failed run"
    );
}

#[test]
#[ignore = "chaos tier: run with --ignored"]
fn link_outage_mid_stream_recovers_exactly() {
    let config = RoutingConfig::builder()
        .advertisements(true)
        .covering(true)
        .build();

    let expected: BTreeSet<_> = healthy_reference(5, config).into_keys().collect();
    let healthy_sigs = {
        let (mut healthy, h_pub, _h_sub) = build(5, config);
        publish_range(&mut healthy, h_pub, 0, N_DOCS);
        healthy.run();
        signatures(&healthy)
    };

    let (mut net, publisher, _subscriber) = build(5, config);
    let ids = net.broker_ids();

    publish_range(&mut net, publisher, 0, N_DOCS / 2);
    net.run();
    net.drop_link(ids[1], ids[2]);
    publish_range(&mut net, publisher, N_DOCS / 2, N_DOCS);
    net.run();
    net.restore_link(ids[1], ids[2]);
    net.run();

    let counts = delivery_counts(&net);
    let got: BTreeSet<_> = counts.keys().copied().collect();
    assert_eq!(got, expected, "link outage changed the delivery set");
    assert!(
        counts.values().all(|&n| n == 1),
        "link outage introduced duplicates"
    );
    assert_eq!(signatures(&net), healthy_sigs);
}
