//! Chaos test: broker failure and recovery under a live stream.
//!
//! A five-broker chain loses its middle broker while publications are
//! in flight. After the broker restarts, neighbour sync must rebuild
//! its routing state, parked traffic must be replayed, and the
//! subscriber must end up with exactly the deliveries a never-failed
//! run produces — no losses, no duplicates, and bit-identical routing
//! tables.
//!
//! Heavier than the tier-1 suites, so it runs behind `--ignored`
//! (exercised by CI's chaos job: `cargo test --test chaos -- --ignored`).

use std::collections::{BTreeMap, BTreeSet};
use xdn::broker::{ClientId, RoutingConfig};
use xdn::net::latency::ClusterLan;
use xdn::net::sim::{Network, ProcessingModel};
use xdn::net::topology::chain;
use xdn::workloads::{docs, psd_dtd, sets};
use xdn::xml::{DocId, PathId};
use xdn::xpath::generate::generate_distinct_xpes;

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

const SEED: u64 = 11;
const N_DOCS: usize = 12;

/// Builds the 5-broker chain with a publisher on one end and a
/// subscriber on the other, control plane fully settled.
fn build(config: RoutingConfig) -> (Network, ClientId, ClientId) {
    let dtd = psd_dtd();
    let mut net = chain(5, config, ClusterLan::default());
    net.set_processing_model(ProcessingModel::Zero);
    net.set_record_deliveries(true);
    let ids = net.broker_ids();
    let publisher = net.attach_client(ids[0]);
    let subscriber = net.attach_client(ids[4]);

    net.advertise_all(
        publisher,
        xdn::core::adv::derive_advertisements(&dtd, &xdn::core::adv::DeriveOptions::default()),
    );
    net.run();
    let mut qrng = ChaCha8Rng::seed_from_u64(SEED + 1);
    for q in generate_distinct_xpes(&dtd, 25, &sets::set_a_config(), &mut qrng) {
        net.subscribe(subscriber, q);
    }
    net.run();
    (net, publisher, subscriber)
}

/// Publishes documents `[from, to)` of the deterministic workload.
fn publish_range(net: &mut Network, publisher: ClientId, from: usize, to: usize) {
    let dtd = psd_dtd();
    for d in &docs::documents(&dtd, N_DOCS, SEED + 500)[from..to] {
        net.publish_document(publisher, d);
    }
}

/// The delivery multiset: every (client, doc, path) with its count.
fn delivery_counts(net: &Network) -> BTreeMap<(ClientId, DocId, PathId), usize> {
    let mut counts = BTreeMap::new();
    for (client, path) in &net.metrics().delivered_paths {
        *counts
            .entry((*client, path.doc_id, path.path_id))
            .or_insert(0) += 1;
    }
    counts
}

/// Per-broker routing signatures, keyed by broker id.
fn signatures(net: &Network) -> Vec<String> {
    net.broker_ids()
        .iter()
        .map(|&id| net.broker(id).routing_signature())
        .collect()
}

#[test]
#[ignore = "chaos tier: run with --ignored"]
fn middle_broker_crash_mid_stream_recovers_exactly() {
    let config = RoutingConfig::builder()
        .advertisements(true)
        .covering(true)
        .build();

    // Reference: the same workload with no failure.
    let (mut healthy, h_pub, _h_sub) = build(config);
    publish_range(&mut healthy, h_pub, 0, N_DOCS);
    healthy.run();
    let expected = delivery_counts(&healthy);
    assert!(!expected.is_empty(), "workload must produce deliveries");

    // Chaos run: the middle broker dies with publications in flight.
    let (mut net, publisher, _subscriber) = build(config);
    let middle = net.broker_ids()[2];

    publish_range(&mut net, publisher, 0, N_DOCS / 3);
    net.run();

    net.crash_broker(middle);
    assert!(net.is_down(middle));
    // Published into the outage: these frames park at the fault line.
    publish_range(&mut net, publisher, N_DOCS / 3, 2 * N_DOCS / 3);
    net.run();
    assert!(
        net.parked_len() > 0,
        "traffic toward the dead broker must park, not vanish"
    );

    // Restart: neighbour sync rebuilds the SRT/PRT, then parked
    // traffic replays.
    net.restart_broker(middle);
    publish_range(&mut net, publisher, 2 * N_DOCS / 3, N_DOCS);
    net.run();

    let got = delivery_counts(&net);
    let missing: Vec<_> = expected.keys().filter(|k| !got.contains_key(*k)).collect();
    assert!(
        missing.is_empty(),
        "deliveries lost across the crash: {missing:?}"
    );
    let duplicated: Vec<_> = got.iter().filter(|(_, &n)| n > 1).collect();
    assert!(
        duplicated.is_empty(),
        "duplicate deliveries after recovery: {duplicated:?}"
    );
    let extra: Vec<_> = got.keys().filter(|k| !expected.contains_key(*k)).collect();
    assert!(
        extra.is_empty(),
        "spurious deliveries after recovery: {extra:?}"
    );
    assert_eq!(
        net.metrics().dropped_crash,
        0,
        "park buffer must not overflow here"
    );

    // The recovered overlay must be routing-table-identical to the
    // never-failed one — SRT and PRT both, on every broker.
    assert_eq!(
        signatures(&net),
        signatures(&healthy),
        "routing state after recovery diverges from the never-failed run"
    );
}

#[test]
#[ignore = "chaos tier: run with --ignored"]
fn link_outage_mid_stream_recovers_exactly() {
    let config = RoutingConfig::builder()
        .advertisements(true)
        .covering(true)
        .build();

    let (mut healthy, h_pub, _h_sub) = build(config);
    publish_range(&mut healthy, h_pub, 0, N_DOCS);
    healthy.run();
    let expected: BTreeSet<_> = delivery_counts(&healthy).into_keys().collect();

    let (mut net, publisher, _subscriber) = build(config);
    let ids = net.broker_ids();

    publish_range(&mut net, publisher, 0, N_DOCS / 2);
    net.run();
    net.drop_link(ids[1], ids[2]);
    publish_range(&mut net, publisher, N_DOCS / 2, N_DOCS);
    net.run();
    net.restore_link(ids[1], ids[2]);
    net.run();

    let counts = delivery_counts(&net);
    let got: BTreeSet<_> = counts.keys().copied().collect();
    assert_eq!(got, expected, "link outage changed the delivery set");
    assert!(
        counts.values().all(|&n| n == 1),
        "link outage introduced duplicates"
    );
    assert_eq!(signatures(&net), signatures(&healthy));
}
