//! Cross-crate observability tests: the trace events the brokers emit
//! must agree with the metrics the network records — a tracer is only
//! trustworthy if its event stream reconstructs the delivery set.

use std::collections::BTreeSet;
use std::sync::Arc;
use xdn::broker::RoutingConfig;
use xdn::net::latency::ClusterLan;
use xdn::net::sim::ProcessingModel;
use xdn::net::topology::chain;
use xdn::obs::CollectingTracer;

#[test]
fn trace_events_match_delivered_notifications() {
    let mut net = chain(
        3,
        RoutingConfig::builder().covering(true).build(),
        ClusterLan::default(),
    );
    net.set_processing_model(ProcessingModel::Zero);
    let tracer = Arc::new(CollectingTracer::new());
    net.set_tracer(tracer.clone());

    let ids = net.broker_ids();
    let publisher = net.attach_client(ids[0]);
    let sub_near = net.attach_client(ids[1]);
    let sub_far = net.attach_client(ids[2]);
    let sub_miss = net.attach_client(ids[2]);
    net.subscribe(sub_near, "/a/b".parse().expect("xpe"));
    net.subscribe(sub_far, "/a/*".parse().expect("xpe"));
    net.subscribe(sub_miss, "/x".parse().expect("xpe"));
    net.run();

    let doc = net.publish_path(publisher, vec!["a".into(), "b".into()], 42);
    net.run();

    // Every delivery the metrics recorded has a matching `pub.deliver`
    // trace event, and vice versa: the event stream reconstructs the
    // notification set exactly.
    let delivered: BTreeSet<(u64, u64)> = net
        .metrics()
        .notifications
        .iter()
        .map(|n| (n.doc.0, n.client.0))
        .collect();
    let traced: BTreeSet<(u64, u64)> = tracer
        .named("pub.deliver")
        .iter()
        .map(|e| (e.id, e.value))
        .collect();
    assert_eq!(delivered, traced, "trace events must mirror deliveries");
    assert_eq!(
        delivered.len(),
        2,
        "exactly the two matching subscribers: {delivered:?}"
    );
    assert!(delivered.iter().all(|&(d, _)| d == doc.0));

    // Each broker on the path recorded one routing span for the
    // publication, stamped with its measured duration.
    let routes = tracer.named("pub.route");
    assert!(
        routes.iter().filter(|e| e.id == doc.0).count() >= 3,
        "every broker in the chain routes the publication: {routes:?}"
    );

    // Subscription processing emitted spans as the three subscriptions
    // propagated through the chain.
    assert!(tracer.named("sub.process").len() >= 3);
}

#[test]
fn tracer_is_opt_in_and_detachable() {
    let mut net = chain(2, RoutingConfig::builder().build(), ClusterLan::default());
    net.set_processing_model(ProcessingModel::Zero);

    // No tracer attached: the network still routes and records metrics.
    let ids = net.broker_ids();
    let publisher = net.attach_client(ids[0]);
    let subscriber = net.attach_client(ids[1]);
    net.subscribe(subscriber, "/a".parse().expect("xpe"));
    net.run();
    net.publish_path(publisher, vec!["a".into()], 10);
    net.run();
    assert_eq!(net.metrics().notifications.len(), 1);

    // Attaching mid-run only observes from that point on.
    let tracer = Arc::new(CollectingTracer::new());
    net.set_tracer(tracer.clone());
    net.publish_path(publisher, vec!["a".into()], 10);
    net.run();
    let deliver = tracer.named("pub.deliver");
    assert_eq!(deliver.len(), 1, "only the second publish is traced");
}
