//! Tests for the attribute-predicate extension (§3.1 notes the
//! approach "could be easily extended to element attributes and
//! content"): parsing, matching, covering, and end-to-end delivery.

use xdn::broker::RoutingConfig;
use xdn::core::cover::covers;
use xdn::net::latency::ClusterLan;
use xdn::net::sim::ProcessingModel;
use xdn::net::topology::chain;
use xdn::xpath::matching::{matches_doc_path, matches_document};
use xdn::xpath::{Predicate, Xpe};

fn xpe(s: &str) -> Xpe {
    s.parse().unwrap()
}

#[test]
fn parse_and_display_roundtrip() {
    for src in [
        "/claim[@id]",
        "/claim[@id='7']/line",
        "//stock[@symbol='XDN']/price",
        "a/*[@lang='en']",
        "/a[@x][@y='2']/b",
    ] {
        let parsed = xpe(src);
        assert_eq!(parsed.to_string(), src, "display must round-trip");
        assert_eq!(xpe(&parsed.to_string()), parsed);
    }
}

#[test]
fn parse_errors() {
    assert!(Xpe::parse("/a[@]").is_err());
    assert!(Xpe::parse("/a[@x='unterminated]").is_err());
    assert!(Xpe::parse("/a[@x=unquoted]").is_err());
    assert!(
        Xpe::parse("/a[text()='x']").is_err(),
        "only @attr predicates supported"
    );
    assert!(Xpe::parse("/a[@x").is_err());
}

#[test]
fn document_matching_with_attributes() {
    let doc = xdn::xml::parse_document(
        r#"<claims><claim id="7" lang="en"><amount>90</amount></claim>
           <claim id="8" lang="pt"><amount>10</amount></claim></claims>"#,
    )
    .unwrap();
    assert!(matches_document(&xpe("//claim[@lang='en']"), &doc));
    assert!(matches_document(&xpe("//claim[@lang='pt']/amount"), &doc));
    assert!(!matches_document(&xpe("//claim[@lang='ja']"), &doc));
    assert!(matches_document(&xpe("//claim[@id]"), &doc));
    assert!(!matches_document(&xpe("//amount[@id]"), &doc));
}

#[test]
fn doc_path_matching_uses_extracted_attributes() {
    let doc = xdn::xml::parse_document(r#"<a x="1"><b y="2"/></a>"#).unwrap();
    let paths = xdn::xml::paths::extract_paths(&doc, xdn::xml::DocId(1));
    assert_eq!(paths.len(), 1);
    assert!(matches_doc_path(&xpe("/a[@x='1']/b"), &paths[0]));
    assert!(matches_doc_path(&xpe("/a/b[@y]"), &paths[0]));
    assert!(!matches_doc_path(&xpe("/a[@x='2']/b"), &paths[0]));
    assert!(!matches_doc_path(&xpe("/a/b[@z]"), &paths[0]));
}

#[test]
fn names_only_paths_fail_predicates() {
    // Without attribute data, predicate steps cannot be satisfied.
    assert!(!xpe("/a[@x]").matches_path(&["a"]));
    assert!(xpe("/a").matches_path(&["a"]));
}

#[test]
fn covering_respects_predicates() {
    // Fewer predicates = wider.
    assert!(covers(&xpe("/a/b"), &xpe("/a/b[@x]")));
    assert!(!covers(&xpe("/a/b[@x]"), &xpe("/a/b")));
    // [@x] is implied by [@x='1'].
    assert!(covers(&xpe("/a[@x]"), &xpe("/a[@x='1']")));
    assert!(!covers(&xpe("/a[@x='1']"), &xpe("/a[@x]")));
    assert!(!covers(&xpe("/a[@x='1']"), &xpe("/a[@x='2']")));
    // Wildcards with predicates still constrain.
    assert!(covers(&xpe("/a/*"), &xpe("/a/*[@x]")));
    assert!(!covers(&xpe("/a/*[@x]"), &xpe("/a/b")));
    // Identical predicate sets cover reflexively.
    assert!(covers(&xpe("/a[@x='1']/b"), &xpe("/a[@x='1']/b/c")));
}

#[test]
fn predicate_implication_table() {
    let has = Predicate::HasAttr("x".into());
    let eq1 = Predicate::AttrEq("x".into(), "1".into());
    let eq2 = Predicate::AttrEq("x".into(), "2".into());
    let other = Predicate::HasAttr("y".into());
    assert!(has.implied_by(&eq1));
    assert!(has.implied_by(&has));
    assert!(!eq1.implied_by(&has));
    assert!(!eq1.implied_by(&eq2));
    assert!(!has.implied_by(&other));
}

#[test]
fn end_to_end_attribute_routing() {
    // Two subscribers: one wants English claims, one Portuguese; the
    // network must route on attribute values.
    let mut net = chain(
        3,
        RoutingConfig::builder()
            .advertisements(true)
            .covering(true)
            .build(),
        ClusterLan::default(),
    );
    net.set_processing_model(ProcessingModel::Zero);
    let ids = net.broker_ids();
    let publisher = net.attach_client(ids[0]);
    let english = net.attach_client(ids[2]);
    let portuguese = net.attach_client(ids[2]);

    let dtd = xdn::xml::dtd::Dtd::parse(
        "<!ELEMENT claims (claim*)><!ELEMENT claim (amount)><!ELEMENT amount (#PCDATA)>",
    )
    .unwrap();
    net.advertise_all(
        publisher,
        xdn::core::adv::derive_advertisements(&dtd, &Default::default()),
    );
    net.run();

    net.subscribe(english, xpe("//claim[@lang='en']"));
    net.subscribe(portuguese, xpe("//claim[@lang='pt']"));
    net.run();

    let doc =
        xdn::xml::parse_document(r#"<claims><claim lang="en"><amount>5</amount></claim></claims>"#)
            .unwrap();
    net.publish_document(publisher, &doc);
    net.run();

    let clients: Vec<_> = net
        .metrics()
        .notifications
        .iter()
        .map(|n| n.client)
        .collect();
    assert_eq!(
        clients,
        vec![english],
        "only the English subscriber matches"
    );
}

#[test]
fn wire_codec_preserves_attributes() {
    let doc = xdn::xml::parse_document(r#"<a x="1"><b lang="en">t</b></a>"#).unwrap();
    let path = &xdn::xml::paths::extract_paths(&doc, xdn::xml::DocId(1))[0];
    let publication = xdn::broker::Publication::from_doc_path(path, 99);
    let msg = xdn::broker::Message::Publish(publication);
    let mut bytes = Vec::new();
    xdn::broker::wire::encode_into(&msg, &mut bytes);
    let (decoded, _) = xdn::broker::wire::decode_frame(&bytes).unwrap();
    assert_eq!(decoded, msg);
    // And the decoded publication still satisfies the predicate.
    if let xdn::broker::Message::Publish(p) = decoded {
        assert!(xdn::xpath::matching::matches_path_with_attrs(
            &xpe("/a[@x='1']/b[@lang='en']"),
            &p.elements,
            &p.attributes,
        ));
    } else {
        unreachable!();
    }
}
