//! Cross-crate end-to-end tests: whole-network delivery correctness.
//!
//! The load-bearing claim behind every optimization in the paper is
//! that it changes *cost*, never *delivery*: for any workload, every
//! strategy must deliver exactly the same documents to exactly the
//! same subscribers as naive flooding with flat tables.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::collections::BTreeSet;
use xdn::broker::{BrokerId, ClientId, RoutingConfig};
use xdn::core::adv::{derive_advertisements, DeriveOptions};
use xdn::net::latency::ClusterLan;
use xdn::net::sim::ProcessingModel;
use xdn::net::topology::{binary_tree, binary_tree_leaves, chain};
use xdn::workloads::{docs, psd_dtd, sets};
use xdn::xml::DocId;
use xdn::xpath::generate::generate_distinct_xpes;

/// Runs one workload under a strategy and returns the delivery set.
fn deliveries(
    config: RoutingConfig,
    levels: u32,
    queries_per_sub: usize,
    n_docs: usize,
    seed: u64,
) -> BTreeSet<(ClientId, DocId)> {
    let dtd = psd_dtd();
    let mut net = binary_tree(levels, config, ClusterLan::default());
    net.set_processing_model(ProcessingModel::Zero);

    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let ids = net.broker_ids();
    let publisher = net.attach_client(ids[rng.gen_range(0..ids.len())]);

    if config.advertisements {
        net.advertise_all(
            publisher,
            derive_advertisements(&dtd, &DeriveOptions::default()),
        );
        net.run();
    }
    if config.merging.is_some() {
        let universe = std::sync::Arc::new(xdn::workloads::universe(&dtd));
        for id in net.broker_ids() {
            net.broker_mut(id).set_universe(universe.clone());
        }
    }
    for (i, leaf) in binary_tree_leaves(levels).into_iter().enumerate() {
        let subscriber = net.attach_client(leaf);
        let mut qrng = ChaCha8Rng::seed_from_u64(seed + 100 + i as u64);
        for q in generate_distinct_xpes(&dtd, queries_per_sub, &sets::set_a_config(), &mut qrng) {
            net.subscribe(subscriber, q);
        }
        // Interleave merging so mergers are live while subscriptions
        // still arrive — the adversarial case for correctness.
        if config.merging.is_some() && i % 2 == 1 {
            net.run();
            net.apply_merging();
        }
    }
    net.run();

    for d in &docs::documents(&dtd, n_docs, seed + 500) {
        net.publish_document(publisher, d);
    }
    net.run();

    net.metrics()
        .notifications
        .iter()
        .map(|n| (n.client, n.doc))
        .collect()
}

#[test]
fn all_strategies_deliver_identically() {
    for seed in [1u64, 2, 3] {
        let baseline = deliveries(RoutingConfig::builder().build(), 3, 30, 6, seed);
        assert!(!baseline.is_empty(), "workload must produce deliveries");
        for (name, config) in RoutingConfig::all_strategies() {
            if name == "with-Adv-with-CovIPM" {
                // Imperfect merging may only ADD network-internal
                // forwards, never change client deliveries.
            }
            let got = deliveries(config, 3, 30, 6, seed);
            assert_eq!(
                got, baseline,
                "strategy {name} changed the delivery set (seed {seed})"
            );
        }
    }
}

#[test]
fn unsubscribe_stops_delivery_and_uncovers() {
    let mut net = chain(
        3,
        RoutingConfig::builder()
            .advertisements(true)
            .covering(true)
            .build(),
        ClusterLan::default(),
    );
    net.set_processing_model(ProcessingModel::Zero);
    let ids = net.broker_ids();
    let publisher = net.attach_client(ids[0]);
    let subscriber = net.attach_client(ids[2]);

    let dtd = psd_dtd();
    net.advertise_all(
        publisher,
        derive_advertisements(&dtd, &DeriveOptions::default()),
    );
    net.run();

    // A wide subscription covering a narrow one.
    let wide = net.subscribe(subscriber, "/ProteinDatabase/ProteinEntry".parse().unwrap());
    net.subscribe(
        subscriber,
        "/ProteinDatabase/ProteinEntry/header".parse().unwrap(),
    );
    net.run();

    // Retract the wide one; the narrow subscription must be promoted
    // and keep delivering.
    net.unsubscribe(subscriber, wide);
    net.run();
    net.metrics_mut().reset();

    let doc = xdn::xml::parse_document(
        "<ProteinDatabase><ProteinEntry><header><uid>X</uid><accession>A</accession></header>\
         <protein><name>n</name></protein><sequence><seq-data>S</seq-data></sequence>\
         </ProteinEntry></ProteinDatabase>",
    )
    .unwrap();
    net.publish_document(publisher, &doc);
    net.run();
    assert_eq!(
        net.metrics().notifications.len(),
        1,
        "promoted narrow subscription must still deliver"
    );

    // Retract the narrow one too: nothing should be delivered.
    // (Re-subscribe bookkeeping: find its id via a fresh subscribe /
    // unsubscribe pair is unnecessary — we saved none, so re-issue.)
    let mut net2 = chain(
        3,
        RoutingConfig::builder()
            .advertisements(true)
            .covering(true)
            .build(),
        ClusterLan::default(),
    );
    net2.set_processing_model(ProcessingModel::Zero);
    let ids2 = net2.broker_ids();
    let p2 = net2.attach_client(ids2[0]);
    let s2 = net2.attach_client(ids2[2]);
    net2.advertise_all(p2, derive_advertisements(&dtd, &DeriveOptions::default()));
    let sub = net2.subscribe(s2, "/ProteinDatabase".parse().unwrap());
    net2.run();
    net2.unsubscribe(s2, sub);
    net2.run();
    net2.metrics_mut().reset();
    net2.publish_document(p2, &doc);
    net2.run();
    assert!(
        net2.metrics().notifications.is_empty(),
        "unsubscribed client still received"
    );
}

#[test]
fn subscription_before_advertisement_still_delivers() {
    // The adversarial ordering: the subscription floods first, the
    // advertisement arrives later; re-evaluation must build the path.
    let mut net = chain(
        4,
        RoutingConfig::builder()
            .advertisements(true)
            .covering(true)
            .build(),
        ClusterLan::default(),
    );
    net.set_processing_model(ProcessingModel::Zero);
    let ids = net.broker_ids();
    let publisher = net.attach_client(ids[0]);
    let subscriber = net.attach_client(ids[3]);

    net.subscribe(subscriber, "/ProteinDatabase//uid".parse().unwrap());
    net.run();

    let dtd = psd_dtd();
    net.advertise_all(
        publisher,
        derive_advertisements(&dtd, &DeriveOptions::default()),
    );
    net.run();

    let doc = xdn::xml::parse_document(
        "<ProteinDatabase><ProteinEntry><header><uid>Z</uid><accession>A</accession></header>\
         <protein><name>n</name></protein><sequence><seq-data>S</seq-data></sequence>\
         </ProteinEntry></ProteinDatabase>",
    )
    .unwrap();
    net.publish_document(publisher, &doc);
    net.run();
    assert_eq!(net.metrics().notifications.len(), 1);
}

#[test]
fn covered_subscription_across_brokers_still_delivers() {
    // Subscriber A's wide filter covers subscriber B's narrow one at
    // B's edge broker; B must still receive matching documents even
    // though its subscription was never forwarded.
    let mut net = binary_tree(
        2,
        RoutingConfig::builder().covering(true).build(),
        ClusterLan::default(),
    );
    net.set_processing_model(ProcessingModel::Zero);
    let publisher = net.attach_client(BrokerId(2));
    let wide_sub = net.attach_client(BrokerId(3));
    let narrow_sub = net.attach_client(BrokerId(3));

    net.subscribe(wide_sub, "/a".parse().unwrap());
    net.run();
    net.subscribe(narrow_sub, "/a/b".parse().unwrap());
    net.run();

    let doc = xdn::xml::parse_document("<a><b/></a>").unwrap();
    net.publish_document(publisher, &doc);
    net.run();
    let clients: BTreeSet<ClientId> = net
        .metrics()
        .notifications
        .iter()
        .map(|n| n.client)
        .collect();
    assert!(clients.contains(&wide_sub));
    assert!(
        clients.contains(&narrow_sub),
        "covered subscriber lost delivery"
    );
}

#[test]
fn coverer_from_one_direction_does_not_suppress_toward_it() {
    // The directional covering bug: q1 floods from the left subscriber,
    // q2 (covered by q1) registers at a right-side broker. q2 must
    // still be forwarded toward the rest of the network, or documents
    // published on the far side never reach it.
    let mut net = chain(
        3,
        RoutingConfig::builder().covering(true).build(),
        ClusterLan::default(),
    );
    net.set_processing_model(ProcessingModel::Zero);
    let ids = net.broker_ids();
    let left_sub = net.attach_client(ids[0]);
    let right_sub = net.attach_client(ids[2]);
    let publisher = net.attach_client(ids[0]);

    net.subscribe(left_sub, "/a".parse().unwrap()); // floods everywhere
    net.run();
    net.subscribe(right_sub, "/a/b".parse().unwrap()); // covered by /a at its broker
    net.run();

    let doc = xdn::xml::parse_document("<a><b/></a>").unwrap();
    net.publish_document(publisher, &doc);
    net.run();
    let clients: BTreeSet<ClientId> = net
        .metrics()
        .notifications
        .iter()
        .map(|n| n.client)
        .collect();
    assert!(
        clients.contains(&right_sub),
        "directionally covered subscriber lost delivery: got {clients:?}"
    );
}
