//! Table-level equivalence: the covering PRT must route exactly like
//! the flat baseline on realistic generated workloads, before and
//! after merging (perfect mergers add nothing; imperfect mergers only
//! add hops, never drop one).

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::collections::BTreeSet;
use xdn::core::merge::MergeConfig;
use xdn::core::rtable::{FlatPrt, Prt, PublicationRouter, SubId};
use xdn::workloads::{docs, nitf_dtd, psd_dtd, sets, universe};
use xdn::xpath::generate::generate_distinct_xpes;

fn workload(
    dtd: &xdn::xml::dtd::Dtd,
    n_queries: usize,
    n_docs: usize,
    seed: u64,
) -> (Vec<xdn::xpath::Xpe>, Vec<Vec<String>>) {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let queries = generate_distinct_xpes(dtd, n_queries, &sets::set_a_config(), &mut rng);
    let documents = docs::documents(dtd, n_docs, seed + 1);
    let paths = docs::publication_paths(&documents)
        .into_iter()
        .map(|p| p.elements)
        .collect();
    (queries, paths)
}

#[test]
fn covering_routes_like_flat() {
    for (dtd, seed) in [(psd_dtd(), 3u64), (nitf_dtd(), 4)] {
        let (queries, pubs) = workload(&dtd, 800, 20, seed);
        let mut flat: FlatPrt<u32> = FlatPrt::new();
        let mut prt: Prt<u32> = Prt::new();
        for (i, q) in queries.iter().enumerate() {
            flat.insert(SubId(i as u64), q.clone(), i as u32);
            prt.insert(SubId(i as u64), q.clone(), i as u32);
        }
        for p in &pubs {
            assert_eq!(
                prt.matching_hops(p, &[]),
                flat.matching_hops(p, &[]),
                "covering changed routing for path {p:?}"
            );
        }
    }
}

#[test]
fn perfect_merging_routes_identically() {
    let dtd = psd_dtd();
    let u = universe(&dtd);
    let (queries, pubs) = workload(&dtd, 600, 15, 9);
    let mut flat: FlatPrt<u32> = FlatPrt::new();
    let mut prt: Prt<u32> = Prt::new();
    for (i, q) in queries.iter().enumerate() {
        flat.insert(SubId(i as u64), q.clone(), i as u32);
        prt.insert(SubId(i as u64), q.clone(), i as u32);
    }
    let mut seq = 1_000_000u64;
    prt.apply_merging(
        &u,
        &MergeConfig {
            max_degree: 0.0,
            ..Default::default()
        },
        || {
            seq += 1;
            SubId(seq)
        },
    );
    for p in &pubs {
        assert_eq!(
            prt.matching_hops(p, &[]),
            flat.matching_hops(p, &[]),
            "perfect merging changed routing for {p:?}"
        );
    }
}

#[test]
fn imperfect_merging_only_adds_hops() {
    let dtd = psd_dtd();
    let u = universe(&dtd);
    let (queries, pubs) = workload(&dtd, 600, 15, 10);
    let mut flat: FlatPrt<u32> = FlatPrt::new();
    let mut prt: Prt<u32> = Prt::new();
    for (i, q) in queries.iter().enumerate() {
        flat.insert(SubId(i as u64), q.clone(), i as u32);
        prt.insert(SubId(i as u64), q.clone(), i as u32);
    }
    let mut seq = 1_000_000u64;
    prt.apply_merging(
        &u,
        &MergeConfig {
            max_degree: 0.2,
            ..Default::default()
        },
        || {
            seq += 1;
            SubId(seq)
        },
    );
    for p in &pubs {
        let truth: BTreeSet<u32> = flat.matching_hops(p, &[]);
        let got: BTreeSet<u32> = prt.matching_hops(p, &[]);
        assert!(
            got.is_superset(&truth),
            "imperfect merging dropped hops for {p:?}: {got:?} vs {truth:?}"
        );
    }
}

#[test]
fn unsubscribing_everyone_empties_the_table() {
    let dtd = psd_dtd();
    let (queries, pubs) = workload(&dtd, 300, 5, 11);
    let mut prt: Prt<u32> = Prt::new();
    for (i, q) in queries.iter().enumerate() {
        prt.insert(SubId(i as u64), q.clone(), i as u32);
    }
    for i in 0..queries.len() {
        prt.remove(SubId(i as u64));
    }
    assert!(prt.is_empty());
    assert_eq!(prt.effective_size(), 0);
    for p in &pubs {
        assert!(prt.matching_hops(p, &[]).is_empty());
    }
}

#[test]
fn interleaved_subscribe_unsubscribe_stays_consistent() {
    let dtd = nitf_dtd();
    let (queries, pubs) = workload(&dtd, 400, 10, 12);
    let mut flat: FlatPrt<u32> = FlatPrt::new();
    let mut prt: Prt<u32> = Prt::new();
    // Subscribe everything, then remove every third subscription.
    for (i, q) in queries.iter().enumerate() {
        flat.insert(SubId(i as u64), q.clone(), i as u32);
        prt.insert(SubId(i as u64), q.clone(), i as u32);
    }
    for i in (0..queries.len()).step_by(3) {
        flat.remove(SubId(i as u64));
        prt.remove(SubId(i as u64));
    }
    prt.tree()
        .check_invariants()
        .expect("tree invariants after churn");
    for p in &pubs {
        assert_eq!(
            prt.matching_hops(p, &[]),
            flat.matching_hops(p, &[]),
            "divergence after churn on {p:?}"
        );
    }
}
